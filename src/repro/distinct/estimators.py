"""Distinct-value estimators.

The centrepiece is :class:`GEEEstimator`, the paper's new estimator
(Section 6.2):

    ``e = sqrt(n/r) * max(f_1, 1) + sum_{j>=2} f_j``

Values seen at least twice are certainly frequent enough to be counted
directly; each singleton "represents" about ``n/r`` tuples that could hold
anywhere between 1 and ``n/r`` distinct values, and the geometric mean
``sqrt(n/r)`` balances those extremes — which is what makes the estimator's
worst-case ratio error match the Theorem 8 lower bound up to constants.

The classical estimators the paper measures against (via Haas et al. [10])
are implemented too: naive, scale-up, first/second-order jackknife
(Burnham-Overton), Chao, Chao-Lee, Shlosser, and Goodman's unbiased
estimator.  A :class:`HybridEstimator` instantiates the paper's suggested
hybrid: test the sample for uniformity and delegate to a low-skew specialist
(Shlosser) or to GEE.

All estimators consume a :class:`~repro.distinct.frequency.FrequencyProfile`
plus the relation size ``n``, and clamp results into the feasible interval
``[d_samp, n]``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special, stats

from ..exceptions import ParameterError
from .frequency import FrequencyProfile

__all__ = [
    "DistinctValueEstimator",
    "NaiveEstimator",
    "ScaleUpEstimator",
    "GEEEstimator",
    "JackknifeEstimator",
    "SecondOrderJackknifeEstimator",
    "ChaoEstimator",
    "ChaoLeeEstimator",
    "ShlosserEstimator",
    "GoodmanEstimator",
    "FiniteJackknifeEstimator",
    "BootstrapEstimator",
    "HybridEstimator",
    "ALL_ESTIMATORS",
    "estimate_all",
]


def _clamp(estimate: float, profile: FrequencyProfile, n: int) -> float:
    """Clamp into the feasible range: at least what we saw, at most n."""
    return float(min(max(estimate, profile.distinct_in_sample), n))


def _check_inputs(profile: FrequencyProfile, n: int) -> None:
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if profile.sample_size > n:
        raise ParameterError(
            f"sample size {profile.sample_size} exceeds relation size {n}"
        )


class DistinctValueEstimator:
    """Interface: estimate ``d`` from a sample's frequency profile."""

    #: Short name used in benchmark tables.
    name: str = "base"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Estimate the distinct count from *profile* over *n* rows."""
        raise NotImplementedError

    def estimate_from_sample(self, sample: np.ndarray, n: int) -> float:
        """Convenience: profile the raw sample, then estimate."""
        return self.estimate(FrequencyProfile.from_sample(sample), n)


class NaiveEstimator(DistinctValueEstimator):
    """``d_hat = d_samp`` — report what was seen.  Always an underestimate;
    this is the *numDVSamp* curve in Figures 9 and 10."""

    name = "naive"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Distinct values in the sample, unscaled (a lower bound)."""
        _check_inputs(profile, n)
        return float(profile.distinct_in_sample)


class ScaleUpEstimator(DistinctValueEstimator):
    """``d_hat = d_samp * n/r`` — linear extrapolation.  Wildly high for
    data with heavy duplication."""

    name = "scale_up"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Sample distinct count scaled by ``n / r``."""
        _check_inputs(profile, n)
        r = profile.sample_size
        return _clamp(profile.distinct_in_sample * n / r, profile, n)


class GEEEstimator(DistinctValueEstimator):
    """The paper's estimator (Section 6.2):
    ``e = sqrt(n/r) * max(f_1, 1) + sum_{j>=2} f_j``.

    Near-optimal with respect to Theorem 8: its worst-case ratio error is
    ``O(sqrt(n/r))``, matching the lower bound at constant ``gamma``.
    This is the *numDVEst* curve in Figures 9 and 10.
    """

    name = "gee"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """The paper's Guaranteed-Error Estimator (Section 6.3)."""
        _check_inputs(profile, n)
        r = profile.sample_size
        f1_plus = max(profile.singletons, 1)
        estimate = math.sqrt(n / r) * f1_plus + profile.multiples
        return _clamp(estimate, profile, n)


class JackknifeEstimator(DistinctValueEstimator):
    """First-order jackknife (Burnham-Overton [2,3]):
    ``d_hat = d_samp + f_1 * (r-1)/r``."""

    name = "jackknife1"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """First-order jackknife estimate."""
        _check_inputs(profile, n)
        r = profile.sample_size
        if r <= 1:
            return _clamp(profile.distinct_in_sample, profile, n)
        estimate = profile.distinct_in_sample + profile.singletons * (r - 1) / r
        return _clamp(estimate, profile, n)


class SecondOrderJackknifeEstimator(DistinctValueEstimator):
    """Second-order jackknife (Burnham-Overton):
    ``d_hat = d_samp + 2*f_1 - f_2`` (with the standard small-sample
    corrections dropped as r grows)."""

    name = "jackknife2"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Second-order jackknife estimate."""
        _check_inputs(profile, n)
        r = profile.sample_size
        if r <= 2:
            return _clamp(profile.distinct_in_sample, profile, n)
        f1, f2 = profile.singletons, profile.f(2)
        estimate = (
            profile.distinct_in_sample
            + f1 * (2 * r - 3) / r
            - f2 * (r - 2) ** 2 / (r * (r - 1))
        )
        return _clamp(estimate, profile, n)


class ChaoEstimator(DistinctValueEstimator):
    """Chao's 1984 estimator: ``d_hat = d_samp + f_1^2 / (2*f_2)``.

    Undefined when ``f_2 = 0``; the bias-corrected variant
    ``f_1*(f_1-1) / (2*(f_2+1))`` is used then.
    """

    name = "chao"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Chao's f1^2/(2 f2) coverage estimate."""
        _check_inputs(profile, n)
        f1, f2 = profile.singletons, profile.f(2)
        if f2 > 0:
            extra = f1 * f1 / (2.0 * f2)
        else:
            extra = f1 * (f1 - 1) / 2.0
        return _clamp(profile.distinct_in_sample + extra, profile, n)


class ChaoLeeEstimator(DistinctValueEstimator):
    """Chao-Lee coverage-based estimator.

    Estimated coverage ``C = 1 - f_1/r``; ``d_hat = d_samp/C +
    r*(1-C)/C * gamma^2`` where ``gamma^2`` is the estimated squared
    coefficient of variation of the class sizes.
    """

    name = "chao_lee"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Chao-Lee coverage estimate with a skew correction."""
        _check_inputs(profile, n)
        r = profile.sample_size
        d = profile.distinct_in_sample
        f1 = profile.singletons
        coverage = 1.0 - f1 / r
        if coverage <= 0:
            # Every sampled value was unique: coverage unknown, fall back to
            # the scale-up guess, which is this estimator's C -> 0 limit.
            return _clamp(d * n / r, profile, n)
        d_cov = d / coverage
        j = profile.occurrence_counts.astype(np.float64)
        f = profile.value_counts.astype(np.float64)
        sum_term = float((j * (j - 1) * f).sum())
        gamma_sq = max(0.0, d_cov * sum_term / (r * (r - 1.0)) - 1.0) if r > 1 else 0.0
        estimate = d_cov + r * (1.0 - coverage) / coverage * gamma_sq
        return _clamp(estimate, profile, n)


class ShlosserEstimator(DistinctValueEstimator):
    """Shlosser's estimator for Bernoulli/fraction sampling:

    ``d_hat = d_samp + f_1 * sum_i (1-q)^i f_i / sum_i i*q*(1-q)^(i-1) f_i``

    with ``q = r/n``.  Performs well when sampled fraction is non-trivial
    and skew is moderate — the specialist the hybrid uses for uniform-ish
    samples.
    """

    name = "shlosser"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Shlosser's estimate for Bernoulli samples."""
        _check_inputs(profile, n)
        r = profile.sample_size
        q = r / n
        if q >= 1.0:
            return float(profile.distinct_in_sample)
        j = profile.occurrence_counts.astype(np.float64)
        f = profile.value_counts.astype(np.float64)
        one_minus_q = 1.0 - q
        numerator = float(((one_minus_q**j) * f).sum())
        denominator = float((j * q * one_minus_q ** (j - 1.0) * f).sum())
        if denominator <= 0:
            return _clamp(profile.distinct_in_sample, profile, n)
        estimate = profile.distinct_in_sample + profile.singletons * (
            numerator / denominator
        )
        return _clamp(estimate, profile, n)


class GoodmanEstimator(DistinctValueEstimator):
    """Goodman's 1949 unbiased estimator for sampling without replacement.

    ``d_hat = d_samp + sum_{i=1}^{r} (-1)^(i+1) *
    [ (n-r+i-1)! (r-i)! / ((n-r-1)! r!) ] * f_i``

    Unbiased but notoriously unstable — the alternating factorial terms
    explode unless ``r`` is close to ``n`` (this is the known failure that
    Section 6.1 cites from [10, 23]).  Computed in log space via ``gammaln``
    and clamped; expect nonsense for small sampling fractions, which is the
    point the paper makes.
    """

    name = "goodman"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Goodman's unbiased (but unstable) estimate."""
        _check_inputs(profile, n)
        r = profile.sample_size
        if r >= n:
            return float(profile.distinct_in_sample)
        j = profile.occurrence_counts.astype(np.float64)
        f = profile.value_counts.astype(np.float64)
        # log of (n-r+i-1)! (r-i)! / ((n-r-1)! r!) for each occupied level i.
        log_terms = (
            special.gammaln(n - r + j)
            + special.gammaln(r - j + 1)
            - special.gammaln(n - r)
            - special.gammaln(r + 1)
        )
        signs = np.where(j % 2 == 1, 1.0, -1.0)
        # Overflowing terms produce inf - inf = nan in the sum; both are
        # expected here (they are exactly the instability being modelled)
        # and handled by the finiteness check below.
        with np.errstate(over="ignore", invalid="ignore"):
            correction = float((signs * np.exp(log_terms) * f).sum())
        if not math.isfinite(correction):
            # Overflowed: report the clamped extreme of the matching sign.
            return float(n) if correction > 0 else float(
                profile.distinct_in_sample
            )
        return _clamp(profile.distinct_in_sample + correction, profile, n)


class FiniteJackknifeEstimator(DistinctValueEstimator):
    """First-order jackknife with the finite-population (sampling fraction)
    correction of Haas et al [10]:

    ``d_hat = d_samp / (1 - (1-q) * f_1 / r)`` with ``q = r/n``.

    As q -> 1 the correction vanishes and the estimator reports what it saw;
    as q -> 0 it approaches ``d / (1 - f_1/r)``, blowing up when everything
    is a singleton — the documented failure mode on low-duplication data.
    """

    name = "jackknife_fp"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Finite-population jackknife estimate."""
        _check_inputs(profile, n)
        r = profile.sample_size
        q = r / n
        denominator = 1.0 - (1.0 - q) * profile.singletons / r
        if denominator <= 0:
            return float(n)
        return _clamp(profile.distinct_in_sample / denominator, profile, n)


class BootstrapEstimator(DistinctValueEstimator):
    """Smith & van Belle's bootstrap estimator:

    ``d_hat = d_samp + sum_v (1 - c_v/r)^r``

    over the values v observed in the sample.  Adds, for each observed
    value, the probability that a bootstrap resample would miss it —
    a mild, low-variance correction that underestimates sharply when many
    values were never sampled at all.
    """

    name = "bootstrap"

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Bootstrap resampling estimate."""
        _check_inputs(profile, n)
        r = profile.sample_size
        j = profile.occurrence_counts.astype(np.float64)
        f = profile.value_counts.astype(np.float64)
        missing_mass = float((((1.0 - j / r) ** r) * f).sum())
        return _clamp(
            profile.distinct_in_sample + missing_mass, profile, n
        )


class HybridEstimator(DistinctValueEstimator):
    """The paper's proposed hybrid variant (Section 6.2).

    The paper suggests a hybrid of GEE with a specialist but leaves the
    mechanism to the full version; we instantiate the standard recipe (used
    by the authors' follow-up work): run a chi-squared uniformity test on the
    sampled value frequencies — if the sample is consistent with low skew,
    use Shlosser's estimator (accurate there); otherwise keep GEE's
    worst-case-safe answer.
    """

    name = "hybrid"

    def __init__(self, significance: float = 0.05):
        if not 0 < significance < 1:
            raise ParameterError(
                f"significance must be in (0, 1), got {significance}"
            )
        self.significance = significance
        self._gee = GEEEstimator()
        self._shlosser = ShlosserEstimator()

    def looks_uniform(self, profile: FrequencyProfile) -> bool:
        """Chi-squared test of 'all sampled values equally likely'."""
        d = profile.distinct_in_sample
        r = profile.sample_size
        if d < 2 or r <= d:
            return True
        observed = np.repeat(
            profile.occurrence_counts, profile.value_counts
        ).astype(np.float64)
        expected = r / d
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        p_value = float(stats.chi2.sf(chi2, df=d - 1))
        return p_value >= self.significance

    def estimate(self, profile: FrequencyProfile, n: int) -> float:
        """Skew-routed hybrid: picks a base estimator per profile."""
        _check_inputs(profile, n)
        if self.looks_uniform(profile):
            return self._shlosser.estimate(profile, n)
        return self._gee.estimate(profile, n)


#: The estimators compared in benchmarks, in presentation order.
ALL_ESTIMATORS: tuple[DistinctValueEstimator, ...] = (
    NaiveEstimator(),
    ScaleUpEstimator(),
    GEEEstimator(),
    JackknifeEstimator(),
    SecondOrderJackknifeEstimator(),
    ChaoEstimator(),
    ChaoLeeEstimator(),
    ShlosserEstimator(),
    GoodmanEstimator(),
    FiniteJackknifeEstimator(),
    BootstrapEstimator(),
    HybridEstimator(),
)


def estimate_all(
    sample: np.ndarray,
    n: int,
    estimators: tuple[DistinctValueEstimator, ...] = ALL_ESTIMATORS,
) -> dict[str, float]:
    """Run every estimator on one sample; returns ``{name: estimate}``."""
    profile = FrequencyProfile.from_sample(sample)
    return {est.name: est.estimate(profile, n) for est in estimators}
