"""Distinct-value estimation (Section 6): the GEE estimator, classical
baselines, error metrics, and the Theorem 8 lower-bound construction."""

from .bounds import (
    AdversarialPair,
    adversarial_pair,
    collision_probability,
    empirical_collision_free_rate,
    forced_ratio_error,
)
from .estimators import (
    ALL_ESTIMATORS,
    BootstrapEstimator,
    ChaoEstimator,
    ChaoLeeEstimator,
    DistinctValueEstimator,
    FiniteJackknifeEstimator,
    GEEEstimator,
    GoodmanEstimator,
    HybridEstimator,
    JackknifeEstimator,
    NaiveEstimator,
    ScaleUpEstimator,
    SecondOrderJackknifeEstimator,
    ShlosserEstimator,
    estimate_all,
)
from .frequency import FrequencyProfile
from .metrics import ratio_error, rel_error

__all__ = [
    "AdversarialPair",
    "adversarial_pair",
    "collision_probability",
    "empirical_collision_free_rate",
    "forced_ratio_error",
    "ALL_ESTIMATORS",
    "BootstrapEstimator",
    "ChaoEstimator",
    "ChaoLeeEstimator",
    "DistinctValueEstimator",
    "FiniteJackknifeEstimator",
    "GEEEstimator",
    "GoodmanEstimator",
    "HybridEstimator",
    "JackknifeEstimator",
    "NaiveEstimator",
    "ScaleUpEstimator",
    "SecondOrderJackknifeEstimator",
    "ShlosserEstimator",
    "estimate_all",
    "FrequencyProfile",
    "ratio_error",
    "rel_error",
]
