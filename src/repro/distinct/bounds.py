"""The Theorem 8 lower bound, made executable.

Theorem 8 states that for any estimator of the number of distinct values
based on a sample of size ``r`` from ``n`` tuples, some relation forces ratio
error at least ``sqrt(n*ln(1/gamma)/r)`` with probability ``gamma``.

The proof strategy is an indistinguishability argument, which this module
materialises so benchmarks can *demonstrate* the bound: build two relations

- **high**: all ``n`` values distinct (``d = n``), and
- **low**: ``d = n/m`` distinct values, each duplicated ``m`` times,

with the duplication factor ``m`` tuned so that a size-``r`` sample from the
*low* relation contains no repeated value with probability at least
``gamma``.  Conditioned on that event, the two samples are statistically
identical (a set of ``r`` fresh values either way), so any estimator returns
the same answer on both — and one of the two truths (``n`` vs ``n/m``) is
off from that answer by a ratio of at least ``sqrt(m)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import ParameterError
from .estimators import DistinctValueEstimator
from .metrics import ratio_error

__all__ = [
    "AdversarialPair",
    "adversarial_pair",
    "collision_probability",
    "empirical_collision_free_rate",
    "forced_ratio_error",
]


@dataclass(frozen=True)
class AdversarialPair:
    """The two indistinguishable relations of the Theorem 8 construction.

    Attributes
    ----------
    high_values / low_values:
        The two relations (same size ``n``); ``high`` is duplicate-free,
        ``low`` has ``duplication`` copies of each of its distinct values.
    duplication:
        The multiplicity ``m``.
    guaranteed_ratio:
        ``sqrt(high_distinct / low_distinct)`` — the ratio error *some*
        estimator answer must incur on one of the two relations whenever
        the sample is collision-free.
    """

    high_values: np.ndarray
    low_values: np.ndarray
    duplication: int
    r: int
    gamma: float

    @property
    def n(self) -> int:
        """Total rows in either relation of the pair."""
        return int(self.high_values.size)

    @property
    def high_distinct(self) -> int:
        """Distinct count of the high-cardinality relation."""
        return int(np.unique(self.high_values).size)

    @property
    def low_distinct(self) -> int:
        """Distinct count of the low-cardinality relation."""
        return int(np.unique(self.low_values).size)

    @property
    def guaranteed_ratio(self) -> float:
        """The ratio error any estimator must concede on this pair."""
        return math.sqrt(self.high_distinct / self.low_distinct)


def collision_probability(n: int, r: int, m: int) -> float:
    """Upper bound on the probability that a with-replacement sample of size
    *r* from the *low* relation repeats a value.

    Any two draws collide in value with probability ``m/n`` (same underlying
    distinct value); union over the ``r*(r-1)/2`` pairs gives
    ``r^2 * m / (2n)``.
    """
    if n <= 0 or r <= 0 or m <= 0:
        raise ParameterError("n, r and m must all be positive")
    return min(1.0, r * (r - 1) * m / (2.0 * n))


def adversarial_pair(n: int, r: int, gamma: float) -> AdversarialPair:
    """Construct the hardest (high, low) relation pair for sample size *r*.

    Chooses the largest duplication ``m`` with collision probability at most
    ``1 - gamma``, so a collision-free (hence uninformative) sample occurs
    with probability at least ``gamma``.
    """
    if not 0 < gamma < 1:
        raise ParameterError(f"gamma must be in (0, 1), got {gamma}")
    if n <= 0 or r <= 0:
        raise ParameterError("n and r must be positive")
    if r * (r - 1) == 0:
        m = n
    else:
        m = int(2.0 * (1.0 - gamma) * n / (r * (r - 1)))
    m = max(1, min(m, n))
    # Make n divisible cleanly: trim the last partial group into full groups.
    d_low = max(1, n // m)
    counts = np.full(d_low, m, dtype=np.int64)
    counts[: n - d_low * m] += 1  # distribute the remainder
    low = np.repeat(np.arange(1, d_low + 1, dtype=np.int64), counts)
    high = np.arange(1, n + 1, dtype=np.int64)
    return AdversarialPair(
        high_values=high, low_values=low, duplication=m, r=r, gamma=gamma
    )


def empirical_collision_free_rate(
    pair: AdversarialPair, trials: int, rng: RngLike = None
) -> float:
    """Fraction of *trials* in which a size-``r`` sample from the low
    relation shows no repeated value (i.e. is indistinguishable from a
    sample of the high relation)."""
    if trials <= 0:
        raise ParameterError(f"trials must be positive, got {trials}")
    generator = ensure_rng(rng)
    low = pair.low_values
    hits = 0
    for _ in range(trials):
        sample = low[generator.integers(0, low.size, size=pair.r)]
        if np.unique(sample).size == sample.size:
            hits += 1
    return hits / trials


def forced_ratio_error(
    pair: AdversarialPair,
    estimator: DistinctValueEstimator,
    rng: RngLike = None,
) -> float:
    """The larger of the estimator's ratio errors on the two relations,
    using one size-``r`` sample from each.

    When the low sample happens to be collision-free this is guaranteed to
    be at least ``pair.guaranteed_ratio`` *for one of the two relations* —
    the executable content of Theorem 8.
    """
    generator = ensure_rng(rng)
    errors = []
    for values, d_true in (
        (pair.high_values, pair.high_distinct),
        (pair.low_values, pair.low_distinct),
    ):
        sample = values[generator.integers(0, values.size, size=pair.r)]
        estimate = estimator.estimate_from_sample(sample, pair.n)
        errors.append(ratio_error(estimate, d_true))
    return max(errors)
