"""Sample frequency profiles.

Every distinct-value estimator in Section 6 is a function of the *frequency
profile* of the sample: ``f_j`` = the number of distinct values occurring
exactly ``j`` times in the sample (so ``sum_j j*f_j = r``).  The profile is
stored sparsely — real samples have a handful of occupied ``j`` levels even
when ``r`` is large.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EmptyDataError

__all__ = ["FrequencyProfile"]


@dataclass(frozen=True)
class FrequencyProfile:
    """Sparse frequency-of-frequencies summary of a sample.

    Attributes
    ----------
    occurrence_counts:
        Sorted distinct occurrence levels ``j`` present in the sample.
    value_counts:
        ``f_j`` for each level, aligned with ``occurrence_counts``.
    """

    occurrence_counts: np.ndarray
    value_counts: np.ndarray

    @classmethod
    def from_sample(cls, sample: np.ndarray) -> "FrequencyProfile":
        """Compute the profile of *sample* (any order, any dtype)."""
        sample = np.asarray(sample)
        if sample.size == 0:
            raise EmptyDataError("cannot profile an empty sample")
        _, per_value = np.unique(sample, return_counts=True)
        levels, f = np.unique(per_value, return_counts=True)
        return cls(
            occurrence_counts=levels.astype(np.int64),
            value_counts=f.astype(np.int64),
        )

    @property
    def sample_size(self) -> int:
        """``r = sum_j j * f_j``."""
        return int((self.occurrence_counts * self.value_counts).sum())

    @property
    def distinct_in_sample(self) -> int:
        """``d_samp = sum_j f_j`` — distinct values observed."""
        return int(self.value_counts.sum())

    def f(self, j: int) -> int:
        """``f_j``: number of distinct values occurring exactly *j* times."""
        idx = np.searchsorted(self.occurrence_counts, j)
        if idx < self.occurrence_counts.size and self.occurrence_counts[idx] == j:
            return int(self.value_counts[idx])
        return 0

    @property
    def singletons(self) -> int:
        """``f_1`` — values seen exactly once (the hard-to-extrapolate mass)."""
        return self.f(1)

    @property
    def multiples(self) -> int:
        """``sum_{j>=2} f_j`` — values seen at least twice."""
        return self.distinct_in_sample - self.singletons

    def as_dense(self, max_level: int | None = None) -> np.ndarray:
        """Dense ``f`` array indexed by occurrence level (index 0 unused)."""
        top = int(self.occurrence_counts.max()) if max_level is None else max_level
        dense = np.zeros(top + 1, dtype=np.int64)
        mask = self.occurrence_counts <= top
        dense[self.occurrence_counts[mask]] = self.value_counts[mask]
        return dense
