"""``python -m repro`` dispatch."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
