"""A single fixed-capacity disk page.

:class:`Page` is the record-level view used by tests and by code that wants
slot semantics.  The hot path (:class:`~repro.storage.heapfile.HeapFile`)
stores all attribute values in one contiguous numpy array and exposes pages
as views, so creating a ``Page`` object per block is never required during
sampling.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import PageCorruptionError, PageFullError, ParameterError

__all__ = ["Page", "page_checksum"]


def page_checksum(values: np.ndarray) -> int:
    """CRC-32 of a page payload's raw bytes.

    This is the integrity check the fault-injection layer uses to *detect*
    simulated corruption: a :class:`~repro.storage.faults.FaultyHeapFile`
    tampers with a bad page's payload and the mismatch against the checksum
    computed at load time surfaces as a
    :class:`~repro.exceptions.PageCorruptionError`.
    """
    payload = np.ascontiguousarray(np.asarray(values))
    return zlib.crc32(payload.tobytes())


@dataclass
class Page:
    """A page holding up to *capacity* attribute values.

    Parameters
    ----------
    page_id:
        Position of this page in its heap file.
    capacity:
        Maximum number of records (the blocking factor ``b``).
    """

    page_id: int
    capacity: int
    _values: list = field(default_factory=list, repr=False)

    def __post_init__(self):
        if self.capacity <= 0:
            raise ParameterError(f"capacity must be positive, got {self.capacity}")
        if self.page_id < 0:
            raise ParameterError(f"page_id must be non-negative, got {self.page_id}")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def is_full(self) -> bool:
        """True when every slot is occupied."""
        return len(self._values) >= self.capacity

    @property
    def free_slots(self) -> int:
        """Number of unoccupied slots."""
        return self.capacity - len(self._values)

    def append(self, value) -> int:
        """Store *value* in the next free slot; return the slot index."""
        if self.is_full:
            raise PageFullError(
                f"page {self.page_id} is full ({self.capacity} slots)"
            )
        self._values.append(value)
        return len(self._values) - 1

    def values(self) -> np.ndarray:
        """All stored values, in slot order."""
        return np.asarray(self._values)

    def checksum(self) -> int:
        """Checksum of the page's current payload (see :func:`page_checksum`)."""
        return page_checksum(self.values())

    def verify_checksum(self, expected: int) -> None:
        """Raise :class:`PageCorruptionError` unless the payload matches
        *expected* (a checksum taken when the page was known good)."""
        actual = self.checksum()
        if actual != expected:
            raise PageCorruptionError(
                f"page {self.page_id} failed its checksum "
                f"(expected {expected:#010x}, got {actual:#010x})",
                page_id=self.page_id,
            )

    def slot(self, index: int):
        """The value in slot *index* (raises ``IndexError`` when empty)."""
        if not 0 <= index < len(self._values):
            raise IndexError(
                f"slot {index} out of range for page with {len(self._values)} records"
            )
        return self._values[index]

    @classmethod
    def from_values(cls, page_id: int, values: np.ndarray, capacity: int) -> "Page":
        """Build a page pre-filled with *values*."""
        values = np.asarray(values)
        if values.size > capacity:
            raise PageFullError(
                f"{values.size} values exceed page capacity {capacity}"
            )
        page = cls(page_id=page_id, capacity=capacity)
        page._values = list(values)
        return page
