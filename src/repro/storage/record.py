"""Record layout: how many tuples fit in a disk page.

The experiments vary record size from 16 to 128 bytes (Section 7.1) to vary
the *blocking factor* — the number of records per page — which is what
actually matters to block-level sampling (Figure 8).  A :class:`RecordSpec`
captures that mapping for SQL Server-style 8 KB pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError

__all__ = ["RecordSpec", "DEFAULT_PAGE_SIZE"]

#: SQL Server 7.0 uses 8 KB pages.
DEFAULT_PAGE_SIZE = 8192

#: Bytes of per-page bookkeeping (header + slot directory allowance).
_PAGE_OVERHEAD = 96


@dataclass(frozen=True)
class RecordSpec:
    """Fixed-size record description.

    Parameters
    ----------
    record_size:
        Bytes per record, including the attribute of interest and payload.
    page_size:
        Bytes per disk page (default 8 KB).
    """

    record_size: int = 64
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self):
        if self.record_size <= 0:
            raise ParameterError(
                f"record_size must be positive, got {self.record_size}"
            )
        if self.page_size - _PAGE_OVERHEAD < self.record_size:
            raise ParameterError(
                f"page_size {self.page_size} too small for record_size "
                f"{self.record_size} plus {_PAGE_OVERHEAD} bytes of overhead"
            )

    @property
    def blocking_factor(self) -> int:
        """Records per page (the paper's ``b``)."""
        return (self.page_size - _PAGE_OVERHEAD) // self.record_size

    def pages_for(self, num_records: int) -> int:
        """Pages needed to store *num_records* records."""
        if num_records < 0:
            raise ParameterError(
                f"num_records must be non-negative, got {num_records}"
            )
        b = self.blocking_factor
        return (num_records + b - 1) // b

    @classmethod
    def for_blocking_factor(
        cls, blocking_factor: int, page_size: int = DEFAULT_PAGE_SIZE
    ) -> "RecordSpec":
        """Spec whose record size yields at least *blocking_factor* records/page.

        Integer record sizes cannot hit every blocking factor exactly; the
        returned spec's :attr:`blocking_factor` is the smallest achievable
        value that is ``>= blocking_factor``.  Experiments that need an exact
        ``b`` should pass ``blocking_factor=`` to
        :meth:`repro.storage.HeapFile.from_values` instead.
        """
        if blocking_factor <= 0:
            raise ParameterError(
                f"blocking_factor must be positive, got {blocking_factor}"
            )
        record_size = (page_size - _PAGE_OVERHEAD) // blocking_factor
        if record_size <= 0:
            raise ParameterError(
                f"blocking_factor {blocking_factor} does not fit in a "
                f"{page_size}-byte page"
            )
        return cls(record_size=record_size, page_size=page_size)
