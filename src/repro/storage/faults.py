"""Fault injection for the storage simulator, and the retry machinery
that keeps sampling-based builds alive on top of it.

The paper's whole pipeline builds statistics from *partial* reads of a
table, yet a single flaky page would abort an entire build.  This module
makes the simulator behave like a storage stack that serves traffic:

- :class:`FaultPolicy` — a seeded, deterministic description of what goes
  wrong: transient read failures (:class:`~repro.exceptions.TransientIOError`),
  permanently corrupt pages (:class:`~repro.exceptions.PageCorruptionError`,
  detected through the per-page checksum of
  :func:`~repro.storage.page.page_checksum`), and per-read latency.
- :class:`FaultyHeapFile` — wraps any :class:`~repro.storage.heapfile.HeapFile`
  and injects the policy's faults on every access path.  With an all-zero
  policy it is behaviourally identical to the wrapped file (same payloads,
  same ``IOStats.page_reads``).
- :class:`RetryPolicy` — bounded retries with exponential backoff and
  deterministic jitter.
- :class:`ReadBudget` / :class:`BudgetTracker` — a per-build cap on failures,
  skipped pages and simulated time; exceeding it raises
  :class:`~repro.exceptions.BuildAbortedError`.
- :func:`read_page_resilient` / :func:`read_record_resilient` /
  :func:`resilient_scan` — the retrying access paths used by the samplers.

Every random decision is a pure function of ``(policy seed, page id,
attempt index)`` — derived through :class:`numpy.random.SeedSequence`, the
same machinery as :func:`repro._rng.spawn_seeds` — never of global draw
order.  A faulty build is therefore bit-identical across runs and across
worker counts, and retries do not perturb the sampler's own RNG stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._rng import RngLike, spawn_seeds
from ..core import kernels
from ..obs import metrics as _metrics
from ..exceptions import (
    BuildAbortedError,
    PageCorruptionError,
    ParameterError,
    SimulatedCrashError,
    TransientIOError,
)
from .heapfile import HeapFile
from .page import page_checksum

__all__ = [
    "FaultPolicy",
    "FaultyHeapFile",
    "RetryPolicy",
    "ReadBudget",
    "BudgetTracker",
    "WriteFaultPolicy",
    "WriteFaultInjector",
    "read_page_resilient",
    "read_pages_resilient",
    "read_record_resilient",
    "resilient_scan",
]

# Stream tags keeping the policy's independent decision streams from
# colliding in SeedSequence space.
_STREAM_CORRUPT = 1
_STREAM_TRANSIENT = 2
_STREAM_JITTER = 3
_STREAM_WRITE = 4


def _hashed_uniform(entropy: tuple[int, ...]) -> float:
    """One U[0,1) draw that is a pure function of *entropy*.

    Counter-based randomness: the draw depends only on the entropy tuple,
    never on how many draws happened before it, so fault decisions are
    reproducible regardless of interleaving with the sampler's own stream.
    """
    return float(np.random.default_rng(entropy).random())


@dataclass(frozen=True)
class FaultPolicy:
    """What goes wrong, how often, and under which seed.

    Parameters
    ----------
    transient_rate:
        Probability that any single physical read attempt fails with a
        :class:`~repro.exceptions.TransientIOError`.  Independent per
        (page, attempt), so retries eventually succeed.
    corrupt_fraction:
        Fraction of the file's pages that are permanently bad: their payload
        is tampered with and every read fails the checksum with a
        :class:`~repro.exceptions.PageCorruptionError`.
    read_latency_s:
        Simulated seconds charged (to ``IOStats.simulated_latency_s``) per
        physical read attempt.  No real sleeping.
    seed:
        Root of all the policy's decision streams.
    """

    transient_rate: float = 0.0
    corrupt_fraction: float = 0.0
    read_latency_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.transient_rate < 1.0:
            raise ParameterError(
                f"transient_rate must be in [0, 1), got {self.transient_rate}"
            )
        if not 0.0 <= self.corrupt_fraction < 1.0:
            raise ParameterError(
                f"corrupt_fraction must be in [0, 1), got {self.corrupt_fraction}"
            )
        if self.read_latency_s < 0:
            raise ParameterError(
                f"read_latency_s must be non-negative, got {self.read_latency_s}"
            )
        if self.seed < 0:
            raise ParameterError(f"seed must be non-negative, got {self.seed}")

    @classmethod
    def seeded(cls, rng: RngLike, **kwargs) -> "FaultPolicy":
        """A policy whose seed is spawned from *rng* (seed, generator or
        ``None``) via the library's standard seed-spawning machinery."""
        (seed,) = spawn_seeds(rng, 1)
        return cls(seed=seed, **kwargs)

    def corrupt_page_ids(self, num_pages: int) -> frozenset[int]:
        """The fixed set of permanently bad pages for a *num_pages* file."""
        if num_pages <= 0 or self.corrupt_fraction == 0.0:
            return frozenset()
        count = int(self.corrupt_fraction * num_pages)
        if count == 0:
            return frozenset()
        rng = np.random.default_rng((self.seed, _STREAM_CORRUPT))
        chosen = rng.choice(num_pages, size=count, replace=False)
        return frozenset(int(p) for p in chosen)

    def transient_fault(self, page_id: int, attempt: int) -> bool:
        """Does read *attempt* (0-based) of *page_id* fail transiently?"""
        if self.transient_rate == 0.0:
            return False
        draw = _hashed_uniform((self.seed, _STREAM_TRANSIENT, page_id, attempt))
        return draw < self.transient_rate


class FaultyHeapFile(HeapFile):
    """A drop-in :class:`HeapFile` that injects a :class:`FaultPolicy`.

    Wraps an existing heap file (sharing its backing array, not copying it)
    and applies the policy on every access path: ``read_page``,
    ``read_pages``, ``read_record``, ``scan`` and ``iter_pages`` all go
    through the faulty read.  Corrupt pages return a tampered payload whose
    checksum mismatch (against the checksum recorded at wrap time) raises
    :class:`~repro.exceptions.PageCorruptionError` — detection works the way
    a real storage engine's page verification does, rather than by fiat.

    With ``FaultPolicy()`` (all rates zero) the wrapper is behaviourally
    identical to the wrapped file: same payload bytes, same
    ``IOStats.page_reads``.
    """

    def __init__(self, inner: HeapFile, policy: FaultPolicy | None = None):
        super().__init__(
            inner.values_unaccounted(),
            blocking_factor=inner.blocking_factor,
            spec=inner.spec,
        )
        self.policy = policy or FaultPolicy()
        self._corrupt = self.policy.corrupt_page_ids(self.num_pages)
        self._attempts: dict[int, int] = {}
        self._expected_checksums: dict[int, int] = {}

    @property
    def corrupt_pages(self) -> frozenset[int]:
        """Page ids the policy designated permanently bad."""
        return self._corrupt

    @property
    def num_readable_pages(self) -> int:
        """Pages that are not permanently corrupt."""
        return self.num_pages - len(self._corrupt)

    def readable_values_unaccounted(self) -> np.ndarray:
        """All values on readable pages, without touching the counters.

        Ground truth for chaos experiments: under permanent page loss the
        population a uniform sample can possibly represent is the readable
        pages, so error targets are evaluated against exactly that multiset.
        """
        if not self._corrupt:
            return self.values_unaccounted()
        chunks = [
            self.values_unaccounted()[slice(*self.page_bounds(pid))]
            for pid in range(self.num_pages)
            if pid not in self._corrupt
        ]
        if not chunks:
            return self.values_unaccounted()[:0]
        return np.concatenate(chunks)

    # ------------------------------------------------------------------
    # Faulty access paths
    # ------------------------------------------------------------------

    def read_page(self, page_id: int) -> np.ndarray:
        """Read a page, possibly raising an injected fault."""
        lo, hi = self.page_bounds(page_id)
        attempt = self._attempts.get(page_id, 0)
        self._attempts[page_id] = attempt + 1
        if self.policy.read_latency_s:
            self.iostats.record_latency(self.policy.read_latency_s)
        if self.policy.transient_fault(page_id, attempt):
            self.iostats.record_failed_read(page_id)
            _metrics.inc("repro_fault_events_total", kind="transient")
            raise TransientIOError(
                f"transient I/O failure reading page {page_id} "
                f"(attempt {attempt + 1})",
                page_id=page_id,
                attempt=attempt,
            )
        clean = self.values_unaccounted()[lo:hi]
        expected = self._expected_checksums.get(page_id)
        if expected is None:
            expected = page_checksum(clean)
            self._expected_checksums[page_id] = expected
        if page_id in self._corrupt:
            # The simulated medium returns a tampered payload; verification
            # against the recorded checksum catches it below.
            payload = clean.copy()
            payload[0] = payload[0] + payload.dtype.type(1)
        else:
            payload = clean
        if page_checksum(payload) != expected:
            self.iostats.record_failed_read(page_id)
            _metrics.inc("repro_fault_events_total", kind="corrupt")
            raise PageCorruptionError(
                f"page {page_id} failed its checksum; it is permanently bad",
                page_id=page_id,
            )
        self.iostats.record_read(page_id)
        return payload

    def read_record(self, record_index: int):
        """Read one record via :meth:`read_page` (faults included)."""
        if not 0 <= record_index < self.num_records:
            raise ParameterError(
                f"record_index {record_index} out of range "
                f"[0, {self.num_records})"
            )
        page_id = record_index // self.blocking_factor
        payload = self.read_page(page_id)
        return payload[record_index - page_id * self.blocking_factor]

    def scan(self) -> np.ndarray:
        """Full scan through the faulty read path.

        Raises on the first fault; use :func:`resilient_scan` to retry and
        skip bad pages instead.
        """
        chunks = [self.read_page(pid) for pid in range(self.num_pages)]
        if not chunks:
            return self.values_unaccounted()[:0]
        return np.concatenate(chunks)

    def __repr__(self) -> str:
        return (
            f"FaultyHeapFile(records={self.num_records}, "
            f"pages={self.num_pages}, corrupt={len(self._corrupt)}, "
            f"transient_rate={self.policy.transient_rate})"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts per page (first try included).
    base_delay_s / multiplier:
        Backoff for attempt ``i`` (0-based retry index) is
        ``base_delay_s * multiplier ** i``, scaled by jitter.
    jitter:
        Relative jitter amplitude in ``[0, 1)``: the delay is multiplied by
        ``1 + jitter * u`` with ``u`` drawn deterministically in ``[-1, 1)``
        from ``(seed, page_id, attempt)`` — reproducible, yet decorrelated
        across pages the way real jitter is.
    seed:
        Root of the jitter stream.
    sleep:
        When True, really ``time.sleep`` the backoff delays.  Off by
        default: delays are charged to ``IOStats.simulated_latency_s`` (and
        to the read budget) without slowing the simulation down.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    sleep: bool = False

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise ParameterError(
                f"base_delay_s must be non-negative, got {self.base_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ParameterError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.seed < 0:
            raise ParameterError(f"seed must be non-negative, got {self.seed}")

    @classmethod
    def seeded(cls, rng: RngLike, **kwargs) -> "RetryPolicy":
        """A policy whose jitter seed is spawned from *rng*."""
        (seed,) = spawn_seeds(rng, 1)
        return cls(seed=seed, **kwargs)

    def backoff_s(self, page_id: int, attempt: int) -> float:
        """The (jittered, deterministic) delay before retry *attempt*."""
        delay = self.base_delay_s * self.multiplier**attempt
        if self.jitter:
            u = 2.0 * _hashed_uniform(
                (self.seed, _STREAM_JITTER, page_id, attempt)
            ) - 1.0
            delay *= 1.0 + self.jitter * u
        return delay


@dataclass(frozen=True)
class ReadBudget:
    """Per-build resource limits (the "read-budget timeout").

    ``None`` disables a limit.  Build code turns the spec into a fresh
    :class:`BudgetTracker` per build via :meth:`tracker`.
    """

    max_failed_reads: int | None = None
    max_skipped_pages: int | None = None
    max_skipped_fraction: float | None = None
    max_simulated_s: float | None = None

    def __post_init__(self):
        if self.max_failed_reads is not None and self.max_failed_reads < 0:
            raise ParameterError(
                f"max_failed_reads must be non-negative, got {self.max_failed_reads}"
            )
        if self.max_skipped_pages is not None and self.max_skipped_pages < 0:
            raise ParameterError(
                f"max_skipped_pages must be non-negative, got {self.max_skipped_pages}"
            )
        if self.max_skipped_fraction is not None and not (
            0.0 <= self.max_skipped_fraction <= 1.0
        ):
            raise ParameterError(
                "max_skipped_fraction must be in [0, 1], got "
                f"{self.max_skipped_fraction}"
            )
        if self.max_simulated_s is not None and self.max_simulated_s < 0:
            raise ParameterError(
                f"max_simulated_s must be non-negative, got {self.max_simulated_s}"
            )

    def tracker(self, num_pages: int | None = None) -> "BudgetTracker":
        """A fresh per-build tracker enforcing this spec."""
        max_skipped = self.max_skipped_pages
        if self.max_skipped_fraction is not None and num_pages:
            by_fraction = int(self.max_skipped_fraction * num_pages)
            max_skipped = (
                by_fraction
                if max_skipped is None
                else min(max_skipped, by_fraction)
            )
        return BudgetTracker(
            max_failed_reads=self.max_failed_reads,
            max_skipped_pages=max_skipped,
            max_simulated_s=self.max_simulated_s,
        )


class BudgetTracker:
    """Mutable per-build spend against a :class:`ReadBudget`.

    Each ``charge_*`` method raises
    :class:`~repro.exceptions.BuildAbortedError` the moment its limit is
    crossed, carrying a snapshot of the spend for diagnostics.
    """

    def __init__(
        self,
        max_failed_reads: int | None = None,
        max_skipped_pages: int | None = None,
        max_simulated_s: float | None = None,
    ):
        self.max_failed_reads = max_failed_reads
        self.max_skipped_pages = max_skipped_pages
        self.max_simulated_s = max_simulated_s
        self.failed_reads = 0
        self.skipped_pages = 0
        self.simulated_s = 0.0

    def snapshot(self) -> dict:
        """Plain-dict copy of the tracker state, for reporting."""
        return {
            "failed_reads": self.failed_reads,
            "skipped_pages": self.skipped_pages,
            "simulated_s": self.simulated_s,
        }

    def _abort(self, what: str) -> None:
        raise BuildAbortedError(
            f"read budget exhausted: {what} "
            f"(failed_reads={self.failed_reads}, "
            f"skipped_pages={self.skipped_pages}, "
            f"simulated_s={self.simulated_s:.4g})",
            snapshot=self.snapshot(),
        )

    def charge_failure(self) -> None:
        """Charge one failed read attempt against the budget."""
        self.failed_reads += 1
        if (
            self.max_failed_reads is not None
            and self.failed_reads > self.max_failed_reads
        ):
            self._abort(f"more than {self.max_failed_reads} failed reads")

    def charge_skip(self) -> None:
        """Charge one permanently skipped page against the budget."""
        self.skipped_pages += 1
        if (
            self.max_skipped_pages is not None
            and self.skipped_pages > self.max_skipped_pages
        ):
            self._abort(f"more than {self.max_skipped_pages} pages skipped")

    def charge_delay(self, seconds: float) -> None:
        """Charge *seconds* of simulated delay against the budget."""
        self.simulated_s += seconds
        if (
            self.max_simulated_s is not None
            and self.simulated_s > self.max_simulated_s
        ):
            self._abort(f"simulated time over {self.max_simulated_s:.4g}s")


@dataclass(frozen=True)
class WriteFaultPolicy:
    """Deterministic crash injection for durable-state writes.

    The durability layer (:mod:`repro.durability`) counts every *durable
    operation* it performs — each atomic snapshot write, each journal
    append, each journal truncation — and consults this policy through a
    :class:`WriteFaultInjector` before completing it.  On the designated
    operation the injector simulates a process death mid-write: only a
    prefix of the payload reaches disk (``torn_fraction``), optionally
    with one bit-flipped byte (``corrupt_tail``), and the caller raises
    :class:`~repro.exceptions.SimulatedCrashError` *instead of finishing
    the protocol* — the rename never happens, the truncation never
    happens.  Recovery tests then reopen the store and assert
    last-known-good semantics.

    Parameters
    ----------
    crash_at_op:
        0-based index of the durable operation to die on; ``None`` never
        crashes.
    torn_fraction:
        Fraction of the payload bytes that reach disk before the crash
        (``1.0`` = the payload is complete but the protocol is not).
    corrupt_tail:
        Flip one deterministically chosen byte of the torn payload,
        modelling a sector scribble; the choice derives from ``seed``.
    seed:
        Root of the byte-choice stream.
    """

    crash_at_op: int | None = None
    torn_fraction: float = 1.0
    corrupt_tail: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.crash_at_op is not None and self.crash_at_op < 0:
            raise ParameterError(
                f"crash_at_op must be non-negative or None, got {self.crash_at_op}"
            )
        if not 0.0 <= self.torn_fraction <= 1.0:
            raise ParameterError(
                f"torn_fraction must be in [0, 1], got {self.torn_fraction}"
            )
        if self.seed < 0:
            raise ParameterError(f"seed must be non-negative, got {self.seed}")

    def injector(self) -> "WriteFaultInjector":
        """A fresh stateful injector (one per store open)."""
        return WriteFaultInjector(self)


class WriteFaultInjector:
    """Mutable op counter applying a :class:`WriteFaultPolicy`.

    Durable-write call sites use the two-phase protocol::

        payload, crash = injector.apply(payload)
        ...persist payload, flush, fsync...
        if crash:
            raise SimulatedCrashError(...)

    so the torn bytes genuinely hit the disk before the simulated death,
    exactly like a real crash between ``write()`` and the protocol's
    completing step.
    """

    def __init__(self, policy: WriteFaultPolicy):
        self.policy = policy
        self.ops = 0

    def apply(self, payload: bytes) -> tuple[bytes, bool]:
        """Mangle *payload* if this op is the crash point.

        Returns ``(bytes_to_persist, crash)``; the caller must raise
        :class:`~repro.exceptions.SimulatedCrashError` after persisting
        when *crash* is true.
        """
        op = self.ops
        self.ops += 1
        policy = self.policy
        if policy.crash_at_op is None or op != policy.crash_at_op:
            return payload, False
        keep = int(len(payload) * policy.torn_fraction)
        mangled = bytearray(payload[:keep])
        if policy.corrupt_tail and mangled:
            pos = int(
                _hashed_uniform((policy.seed, _STREAM_WRITE, op)) * len(mangled)
            )
            mangled[pos] ^= 0xFF
        _metrics.inc("repro_fault_events_total", kind="write")
        return bytes(mangled), True

    def crash(self, what: str) -> None:
        """Raise the simulated death for the op just applied."""
        raise SimulatedCrashError(
            f"simulated crash during {what} (op {self.ops - 1})",
            op_index=self.ops - 1,
        )


def read_page_resilient(
    heapfile: HeapFile,
    page_id: int,
    retry: RetryPolicy | None = None,
    budget: BudgetTracker | None = None,
) -> np.ndarray | None:
    """Read a page with retries; ``None`` when it is permanently unreadable.

    Transient faults are retried up to ``retry.max_attempts`` times with
    jittered exponential backoff (charged to the heap file's
    ``simulated_latency_s`` and the *budget*); corruption is never retried.
    On a plain fault-free :class:`HeapFile` this is exactly ``read_page``.
    Exceeding the budget raises
    :class:`~repro.exceptions.BuildAbortedError`.
    """
    attempts = retry.max_attempts if retry is not None else 1
    for attempt in range(attempts):
        try:
            payload = heapfile.read_page(page_id)
            _metrics.inc("repro_resilient_reads_total", outcome="delivered")
            return payload
        except PageCorruptionError:
            if budget is not None:
                budget.charge_failure()
            heapfile.iostats.record_skip(page_id)
            if budget is not None:
                budget.charge_skip()
            _metrics.inc("repro_resilient_reads_total", outcome="skipped")
            return None
        except TransientIOError:
            if budget is not None:
                budget.charge_failure()
            if attempt + 1 >= attempts:
                break
            heapfile.iostats.record_retry(page_id)
            delay = retry.backoff_s(page_id, attempt)
            heapfile.iostats.record_latency(delay)
            if budget is not None:
                budget.charge_delay(delay)
            if retry.sleep and delay > 0:
                time.sleep(delay)
    heapfile.iostats.record_skip(page_id)
    if budget is not None:
        budget.charge_skip()
    _metrics.inc("repro_resilient_reads_total", outcome="skipped")
    return None


def _batched_fault_path(heapfile: HeapFile) -> bool:
    """Can :func:`read_pages_resilient` batch reads on *heapfile*?

    True for plain heap files (no fault injection at all) and for
    :class:`FaultyHeapFile` without transient faults.  Transient faults
    draw per ``(page, attempt)``, and the retry loop's observable side
    effects (backoff charges, retry counts) are inherently sequential, so
    that configuration stays on the scalar path.
    """
    if type(heapfile).read_page is HeapFile.read_page:
        return True
    return (
        type(heapfile) is FaultyHeapFile
        and heapfile.policy.transient_rate == 0.0
    )


def read_pages_resilient(
    heapfile: HeapFile,
    page_ids,
    retry: RetryPolicy | None = None,
    budget: BudgetTracker | None = None,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Batched twin of :func:`read_page_resilient`.

    Reads *page_ids* in order and returns ``(payload, delivered_ids,
    skipped_ids)``: the concatenated values of every readable page, the
    ids actually delivered (in input order), and the ids permanently
    skipped.  Counter totals, metrics, budget charges and their ordering —
    including the exact page at which a budget abort raises
    :class:`~repro.exceptions.BuildAbortedError` — are bit-identical to
    calling :func:`read_page_resilient` once per id.

    When :func:`_batched_fault_path` holds, runs of clean pages between
    corrupt ones are gathered with one vectorized call; otherwise (per-
    attempt transient faults) the loop simply delegates to the scalar
    function.
    """
    ids = np.asarray(page_ids, dtype=np.int64)
    if ids.size == 0:
        return heapfile.values_unaccounted()[:0], ids, []
    if type(heapfile).read_page is HeapFile.read_page:
        # Fault-free file: nothing can fail, one batched gather suffices.
        payload = heapfile.read_pages(ids)
        _metrics.inc(
            "repro_resilient_reads_total", int(ids.size), outcome="delivered"
        )
        return payload, ids, []
    if not (
        type(heapfile) is FaultyHeapFile
        and heapfile.policy.transient_rate == 0.0
    ):
        # Transient faults (or an unknown subclass): scalar semantics only.
        chunks = []
        delivered = []
        skipped: list[int] = []
        for pid in ids.tolist():
            payload = read_page_resilient(
                heapfile, pid, retry=retry, budget=budget
            )
            if payload is None:
                skipped.append(pid)
            else:
                chunks.append(payload)
                delivered.append(pid)
        if chunks:
            flat = np.concatenate(chunks)
        else:
            flat = heapfile.values_unaccounted()[:0]
        return flat, np.asarray(delivered, dtype=np.int64), skipped

    # FaultyHeapFile with corruption only: page outcomes are fixed by the
    # policy's corrupt set, so runs of clean pages batch into one gather.
    policy = heapfile.policy
    corrupt = heapfile._corrupt
    values = heapfile.values_unaccounted()
    chunks = []
    delivered = []
    skipped = []

    def _flush(run: list[int]) -> None:
        # One clean run: same per-page accounting as the scalar path
        # (attempt counts, latency, read counters, delivered metric), in
        # one batched call each.  Clean deliveries never charge the
        # budget, so intra-run ordering is unobservable.
        if not run:
            return
        arr = np.asarray(run, dtype=np.int64)
        for pid in run:
            heapfile._attempts[pid] = heapfile._attempts.get(pid, 0) + 1
        if policy.read_latency_s:
            heapfile.iostats.record_latency(policy.read_latency_s * len(run))
        chunks.append(kernels.gather_pages(values, arr, heapfile.blocking_factor))
        heapfile.iostats.record_reads(arr)
        _metrics.inc(
            "repro_resilient_reads_total", len(run), outcome="delivered"
        )
        delivered.extend(run)

    run: list[int] = []
    for pid in ids.tolist():
        if pid not in corrupt:
            run.append(pid)
            continue
        _flush(run)
        run = []
        # Mirror FaultyHeapFile.read_page on a corrupt page...
        heapfile._attempts[pid] = heapfile._attempts.get(pid, 0) + 1
        if policy.read_latency_s:
            heapfile.iostats.record_latency(policy.read_latency_s)
        heapfile.iostats.record_failed_read(pid)
        _metrics.inc("repro_fault_events_total", kind="corrupt")
        # ...then read_page_resilient's corruption branch, charge order
        # included (a budget abort must raise at the same point).
        if budget is not None:
            budget.charge_failure()
        heapfile.iostats.record_skip(pid)
        if budget is not None:
            budget.charge_skip()
        _metrics.inc("repro_resilient_reads_total", outcome="skipped")
        skipped.append(pid)
    _flush(run)

    if chunks:
        flat = np.concatenate(chunks)
    else:
        flat = values[:0]
    return flat, np.asarray(delivered, dtype=np.int64), skipped


def read_record_resilient(
    heapfile: HeapFile,
    record_index: int,
    retry: RetryPolicy | None = None,
    budget: BudgetTracker | None = None,
):
    """Record-level twin of :func:`read_page_resilient` (``None`` on loss)."""
    page_id = record_index // heapfile.blocking_factor
    payload = read_page_resilient(heapfile, page_id, retry=retry, budget=budget)
    if payload is None:
        return None
    return payload[record_index - page_id * heapfile.blocking_factor]


def resilient_scan(
    heapfile: HeapFile,
    retry: RetryPolicy | None = None,
    budget: BudgetTracker | None = None,
) -> np.ndarray:
    """Full scan that retries transients and skips unreadable pages."""
    chunks = []
    for page_id in range(heapfile.num_pages):
        payload = read_page_resilient(
            heapfile, page_id, retry=retry, budget=budget
        )
        if payload is not None:
            chunks.append(payload)
    if not chunks:
        return heapfile.values_unaccounted()[:0]
    return np.concatenate(chunks)
