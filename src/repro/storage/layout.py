"""Physical placement of tuples on disk pages.

Block-level sampling quality depends entirely on *which tuples share a page*
(Section 4.1 of the paper).  A layout function maps a value multiset in
domain order to the order in which records are written to the heap file:

``random``
    Tuples placed uniformly at random — the paper's scenario (a), where a
    page of ``b`` tuples is as informative as ``b`` independent record
    samples.

``sorted``
    Tuples written in value order — scenario (b), total intra-page
    correlation: one page contributes roughly one useful sample.

``partial``
    The paper's experimental middle ground (Section 7.1): for every distinct
    value, a fraction (default 20%) of its duplicates is kept as one
    contiguous run, while the remaining tuples get independent random
    positions.  This models data that is clustered "in patches".

``value_runs``
    Every distinct value's duplicates form one contiguous run, but the runs
    themselves are shuffled — extreme duplication clustering without global
    sort order.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import ParameterError, UnknownLayoutError

__all__ = [
    "LAYOUT_NAMES",
    "random_layout",
    "sorted_layout",
    "partially_clustered_layout",
    "value_runs_layout",
    "apply_layout",
]

LAYOUT_NAMES = ("random", "sorted", "partial", "value_runs")


def random_layout(values: np.ndarray, rng: RngLike = None) -> np.ndarray:
    """Uniformly random tuple placement (scenario (a))."""
    values = np.asarray(values)
    generator = ensure_rng(rng)
    return values[generator.permutation(values.size)]


def sorted_layout(values: np.ndarray, rng: RngLike = None) -> np.ndarray:
    """Value-ordered placement (scenario (b): fully correlated pages)."""
    return np.sort(np.asarray(values))


def partially_clustered_layout(
    values: np.ndarray,
    cluster_fraction: float = 0.2,
    rng: RngLike = None,
) -> np.ndarray:
    """The paper's partially clustered layout.

    For each distinct value with multiplicity ``m``, ``round(cluster_fraction
    * m)`` copies are emitted as one contiguous run; the remaining copies are
    emitted as independent single-tuple units.  All units are then shuffled,
    reproducing the paper's construction of assigning one shared tuple-id to
    20% of each value's duplicates and random tuple-ids to the rest, then
    clustering on tuple-id.
    """
    if not 0.0 <= cluster_fraction <= 1.0:
        raise ParameterError(
            f"cluster_fraction must be in [0, 1], got {cluster_fraction}"
        )
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    generator = ensure_rng(rng)

    distinct, counts = np.unique(values, return_counts=True)
    clustered_counts = np.round(counts * cluster_fraction).astype(np.int64)
    loose_counts = counts - clustered_counts

    # Units: one per clustered run (length >= 1) plus one per loose tuple.
    run_values = distinct[clustered_counts > 0]
    run_lengths = clustered_counts[clustered_counts > 0]
    loose_values = np.repeat(distinct, loose_counts)

    num_units = run_values.size + loose_values.size
    order = generator.permutation(num_units)

    # Unit table: (value, length) with runs first, then loose singletons.
    unit_values = np.concatenate([run_values, loose_values])
    unit_lengths = np.concatenate(
        [run_lengths, np.ones(loose_values.size, dtype=np.int64)]
    )
    return np.repeat(unit_values[order], unit_lengths[order])


def value_runs_layout(values: np.ndarray, rng: RngLike = None) -> np.ndarray:
    """Each distinct value contiguous, runs in random order."""
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    generator = ensure_rng(rng)
    distinct, counts = np.unique(values, return_counts=True)
    order = generator.permutation(distinct.size)
    return np.repeat(distinct[order], counts[order])


_LAYOUTS: dict[str, Callable] = {
    "random": random_layout,
    "sorted": sorted_layout,
    "value_runs": value_runs_layout,
}


def apply_layout(
    values: np.ndarray,
    layout: str = "random",
    rng: RngLike = None,
    cluster_fraction: float = 0.2,
) -> np.ndarray:
    """Dispatch to one of the named layouts (see :data:`LAYOUT_NAMES`)."""
    if layout == "partial":
        return partially_clustered_layout(values, cluster_fraction, rng)
    func = _LAYOUTS.get(layout)
    if func is None:
        raise UnknownLayoutError(
            f"unknown layout {layout!r}; choose one of {LAYOUT_NAMES}"
        )
    return func(values, rng)
