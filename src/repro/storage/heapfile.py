"""Heap file: the simulated on-disk table.

A :class:`HeapFile` stores one column's values in page order (the physical
layout already applied) and charges one page read per page fetched, which is
the cost unit the paper reports ("number of disk blocks sampled", Figure 4).

The backing store is a single contiguous numpy array; ``read_page`` returns a
view, so scanning or sampling a million-page file allocates almost nothing.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .._rng import RngLike
from ..core import kernels
from ..exceptions import ParameterError
from .iostats import IOStats
from .layout import apply_layout
from .page import Page
from .record import RecordSpec

__all__ = ["HeapFile"]


class HeapFile:
    """A read-only heap file over one attribute column.

    Construct with :meth:`from_values`, which applies a physical layout, or
    directly from an array already in page order.
    """

    def __init__(
        self,
        laid_out_values: np.ndarray,
        blocking_factor: int,
        spec: RecordSpec | None = None,
    ):
        values = np.asarray(laid_out_values)
        if values.ndim != 1:
            raise ParameterError(
                f"heap file values must be one-dimensional, got shape {values.shape}"
            )
        if blocking_factor <= 0:
            raise ParameterError(
                f"blocking_factor must be positive, got {blocking_factor}"
            )
        self._values = values
        self._blocking_factor = int(blocking_factor)
        self._spec = spec
        self.iostats = IOStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        layout: str = "random",
        rng: RngLike = None,
        spec: RecordSpec | None = None,
        blocking_factor: int | None = None,
        cluster_fraction: float = 0.2,
    ) -> "HeapFile":
        """Lay out *values* and wrap them in a heap file.

        Parameters
        ----------
        values:
            The column's multiset, in any order.
        layout:
            One of :data:`repro.storage.layout.LAYOUT_NAMES`.
        spec:
            Record/page geometry; defaults to 64-byte records in 8 KB pages.
        blocking_factor:
            Overrides ``spec.blocking_factor`` when experiments need an exact
            records-per-page count.
        cluster_fraction:
            Only used by the ``partial`` layout.
        """
        if spec is None:
            spec = RecordSpec()
        if blocking_factor is None:
            blocking_factor = spec.blocking_factor
        laid_out = apply_layout(
            values, layout=layout, rng=rng, cluster_fraction=cluster_fraction
        )
        return cls(laid_out, blocking_factor=blocking_factor, spec=spec)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def num_records(self) -> int:
        """Total records stored (the paper's ``n``)."""
        return int(self._values.size)

    @property
    def blocking_factor(self) -> int:
        """Records per page (the paper's ``b``)."""
        return self._blocking_factor

    @property
    def num_pages(self) -> int:
        """Number of pages, including a possibly short last page."""
        b = self._blocking_factor
        return (self.num_records + b - 1) // b

    @property
    def spec(self) -> RecordSpec | None:
        """Record geometry, when known."""
        return self._spec

    def page_bounds(self, page_id: int) -> tuple[int, int]:
        """Half-open record-index range ``[lo, hi)`` stored on *page_id*."""
        if not 0 <= page_id < self.num_pages:
            raise ParameterError(
                f"page_id {page_id} out of range [0, {self.num_pages})"
            )
        lo = page_id * self._blocking_factor
        hi = min(lo + self._blocking_factor, self.num_records)
        return lo, hi

    # ------------------------------------------------------------------
    # Access paths (all charged to iostats)
    # ------------------------------------------------------------------

    def read_page(self, page_id: int) -> np.ndarray:
        """All values on *page_id*; costs one page read."""
        lo, hi = self.page_bounds(page_id)
        self.iostats.record_read(page_id)
        return self._values[lo:hi]

    def read_pages(self, page_ids: Sequence[int]) -> np.ndarray:
        """Concatenated values of *page_ids*, charged one read each.

        This is the block-sampling access path: page order is preserved as
        given, duplicate ids are read (and charged) again.
        """
        if len(page_ids) == 0:
            return self._values[:0]
        if kernels.vectorized() and type(self).read_page is HeapFile.read_page:
            # Batched fast path: one gather + one accounting call.  Gated on
            # read_page not being overridden so fault-injecting subclasses
            # keep their per-page semantics.
            ids = np.asarray(page_ids, dtype=np.int64)
            bad = (ids < 0) | (ids >= self.num_pages)
            if bad.any():
                first = int(ids[bad][0])
                raise ParameterError(
                    f"page_id {first} out of range [0, {self.num_pages})"
                )
            payload = kernels.gather_pages(
                self._values, ids, self._blocking_factor
            )
            self.iostats.record_reads(ids)
            return payload
        chunks = [self.read_page(int(pid)) for pid in page_ids]
        return np.concatenate(chunks)

    def read_record(self, record_index: int):
        """One record by global index; costs a read of its whole page.

        This is what makes record-level sampling expensive: fetching a single
        tuple still pulls a full page off disk (Section 4 of the paper).
        """
        if not 0 <= record_index < self.num_records:
            raise ParameterError(
                f"record_index {record_index} out of range [0, {self.num_records})"
            )
        page_id = record_index // self._blocking_factor
        self.iostats.record_read(page_id)
        return self._values[record_index]

    def scan(self) -> np.ndarray:
        """Full scan; costs one read per page, returns all values."""
        if kernels.vectorized():
            self.iostats.record_reads(range(self.num_pages))
            return self._values
        for page_id in range(self.num_pages):
            self.iostats.record_read(page_id)
        return self._values

    def iter_pages(self) -> Iterator[np.ndarray]:
        """Iterate page payloads in order, charging each page."""
        for page_id in range(self.num_pages):
            yield self.read_page(page_id)

    def materialize_page(self, page_id: int) -> Page:
        """A :class:`Page` object for *page_id* (charged as one read)."""
        payload = self.read_page(page_id)
        return Page.from_values(page_id, payload, capacity=self._blocking_factor)

    # ------------------------------------------------------------------
    # Unaccounted access (oracle / ground truth only)
    # ------------------------------------------------------------------

    def values_unaccounted(self) -> np.ndarray:
        """All values without touching the I/O counters.

        Only for ground-truth computation in experiments; library code paths
        must use :meth:`scan` / :meth:`read_page`.
        """
        return self._values

    def __repr__(self) -> str:
        return (
            f"HeapFile(records={self.num_records}, pages={self.num_pages}, "
            f"blocking_factor={self.blocking_factor})"
        )
