"""Storage simulator: pages, heap files, layouts, and I/O accounting.

This subpackage stands in for the Microsoft SQL Server 7.0 storage engine of
the paper's experiments.  What the experiments depend on — which tuples share
a disk block, and how many blocks a sampling strategy reads — is modelled
exactly; device timing is deliberately out of scope.
"""

from .faults import (
    BudgetTracker,
    FaultPolicy,
    FaultyHeapFile,
    ReadBudget,
    RetryPolicy,
    read_page_resilient,
    read_record_resilient,
    resilient_scan,
)
from .heapfile import HeapFile
from .iostats import IOStats
from .layout import (
    LAYOUT_NAMES,
    apply_layout,
    partially_clustered_layout,
    random_layout,
    sorted_layout,
    value_runs_layout,
)
from .page import Page, page_checksum
from .record import DEFAULT_PAGE_SIZE, RecordSpec

__all__ = [
    "BudgetTracker",
    "FaultPolicy",
    "FaultyHeapFile",
    "ReadBudget",
    "RetryPolicy",
    "read_page_resilient",
    "read_record_resilient",
    "resilient_scan",
    "HeapFile",
    "IOStats",
    "page_checksum",
    "LAYOUT_NAMES",
    "apply_layout",
    "partially_clustered_layout",
    "random_layout",
    "sorted_layout",
    "value_runs_layout",
    "Page",
    "DEFAULT_PAGE_SIZE",
    "RecordSpec",
]
