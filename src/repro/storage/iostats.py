"""I/O accounting for the storage simulator.

The paper reports sampling cost in *disk blocks read* (e.g. Figure 4).  The
simulator's only cost model is therefore a page-read counter: every page
fetched from a :class:`~repro.storage.heapfile.HeapFile` increments it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Mutable counter bundle attached to a heap file.

    Attributes
    ----------
    page_reads:
        Number of page fetches since construction or the last ``reset``.
    pages_touched:
        Distinct pages fetched (re-reading a cached page still counts as a
        ``page_read`` but not as a new touched page).
    """

    page_reads: int = 0
    _touched: set = field(default_factory=set, repr=False)

    @property
    def pages_touched(self) -> int:
        return len(self._touched)

    def record_read(self, page_id: int) -> None:
        """Account for one read of *page_id*."""
        self.page_reads += 1
        self._touched.add(page_id)

    def reset(self) -> None:
        """Zero all counters."""
        self.page_reads = 0
        self._touched.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy of the counters, for reporting."""
        return {"page_reads": self.page_reads, "pages_touched": self.pages_touched}
