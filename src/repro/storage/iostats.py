"""I/O accounting for the storage simulator.

The paper reports sampling cost in *disk blocks read* (e.g. Figure 4).  The
simulator's primary cost model is therefore a page-read counter: every page
fetched from a :class:`~repro.storage.heapfile.HeapFile` increments it.

The fault-injection layer (:mod:`repro.storage.faults`) adds failure
accounting on top, so cost curves stay honest under degraded builds:

- ``failed_reads`` — read attempts that raised (transient fault or checksum
  mismatch); these are *not* counted as ``page_reads``, which only tallies
  successfully delivered pages.
- ``retries`` — re-attempts issued by a retry policy after a transient fault.
- ``pages_skipped`` — pages permanently given up on (corrupt, or transient
  retries exhausted) and replaced by fresh draws.
- ``simulated_latency_s`` — simulated time spent on read latency and
  backoff delays (no real sleeping happens unless explicitly requested).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..obs import metrics as _metrics

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Mutable counter bundle attached to a heap file.

    Attributes
    ----------
    page_reads:
        Number of successful page fetches since construction or the last
        ``reset``.
    pages_touched:
        Distinct pages fetched (re-reading a cached page still counts as a
        ``page_read`` but not as a new touched page).
    failed_reads / retries / pages_skipped / simulated_latency_s:
        Fault accounting; see the module docstring.
    """

    page_reads: int = 0
    failed_reads: int = 0
    retries: int = 0
    pages_skipped: int = 0
    simulated_latency_s: float = 0.0
    _touched: set[int] = field(default_factory=set, repr=False)

    @property
    def pages_touched(self) -> int:
        """Distinct pages fetched since construction or the last reset."""
        return len(self._touched)

    def record_read(self, page_id: int) -> None:
        """Account for one successful read of *page_id*."""
        self.page_reads += 1
        self._touched.add(page_id)
        _metrics.inc("repro_read_attempts_total")
        _metrics.inc("repro_page_reads_total")

    def record_reads(self, page_ids) -> None:
        """Account for successful reads of every page in *page_ids*.

        Batched twin of :meth:`record_read`: counter values and metric
        totals end up exactly as if ``record_read`` had been called once
        per id (duplicates charge again), which keeps the vectorized read
        path's accounting bit-identical to the scalar one.
        """
        count = len(page_ids)
        if count == 0:
            return
        self.page_reads += count
        # tolist() materialises Python ints at C speed; int and np.int64
        # keys hash identically, so the set contents match the scalar path.
        self._touched.update(np.asarray(page_ids).tolist())
        _metrics.inc("repro_read_attempts_total", count)
        _metrics.inc("repro_page_reads_total", count)

    def record_failed_read(self, page_id: int) -> None:
        """Account for a read attempt of *page_id* that raised."""
        self.failed_reads += 1
        _metrics.inc("repro_read_attempts_total")
        _metrics.inc("repro_failed_reads_total")

    def record_retry(self, page_id: int) -> None:
        """Account for one retry issued after a transient fault."""
        self.retries += 1
        _metrics.inc("repro_retries_total")

    def record_skip(self, page_id: int) -> None:
        """Account for permanently giving up on *page_id*."""
        self.pages_skipped += 1
        _metrics.inc("repro_pages_skipped_total")

    def record_latency(self, seconds: float) -> None:
        """Accumulate *seconds* of simulated read/backoff latency."""
        self.simulated_latency_s += seconds
        _metrics.inc("repro_simulated_latency_seconds_total", seconds)

    def reset(self) -> None:
        """Zero all counters, including the fault counters."""
        self.page_reads = 0
        self.failed_reads = 0
        self.retries = 0
        self.pages_skipped = 0
        self.simulated_latency_s = 0.0
        self._touched.clear()

    def merge(self, other: "IOStats") -> "IOStats":
        """Fold *other*'s counters into this one (returns ``self``).

        Used to aggregate per-trial accounting shipped back from
        :class:`~repro.experiments.parallel.TrialPool` workers.  Touched-page
        sets are unioned, which is only meaningful when both sides refer to
        the same file; across distinct files treat ``pages_touched`` of the
        merge as approximate.
        """
        self.page_reads += other.page_reads
        self.failed_reads += other.failed_reads
        self.retries += other.retries
        self.pages_skipped += other.pages_skipped
        self.simulated_latency_s += other.simulated_latency_s
        self._touched |= other._touched
        return self

    @contextmanager
    def delta(self) -> Iterator[dict]:
        """Capture the per-counter change across a ``with`` block.

        Yields a dict that is *filled in on exit* with ``after - before``
        for every :meth:`snapshot` counter — the bench harness uses this to
        charge exactly one measured run's I/O to its logical-cost record,
        and it composes with tracing (which snapshots independently).
        ``pages_touched`` deltas count pages first touched inside the
        block.
        """
        before = self.snapshot()
        out: dict = {}
        try:
            yield out
        finally:
            after = self.snapshot()
            for key, value in after.items():
                out[key] = value - before[key]

    def snapshot(self) -> dict:
        """A plain-dict copy of the counters, for reporting."""
        return {
            "page_reads": self.page_reads,
            "pages_touched": self.pages_touched,
            "failed_reads": self.failed_reads,
            "retries": self.retries,
            "pages_skipped": self.pages_skipped,
            "simulated_latency_s": self.simulated_latency_s,
        }
