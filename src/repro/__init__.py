"""repro — a full reproduction of Chaudhuri, Motwani & Narasayya,
"Random Sampling for Histogram Construction: How much is enough?"
(SIGMOD 1998).

Public API tour
---------------

Histograms and error metrics (Section 2)::

    from repro import EquiHeightHistogram, max_error_fraction
    hist = EquiHeightHistogram.from_values(values, k=200)

Sampling bounds (Section 3)::

    from repro.core import bounds
    r = bounds.corollary1_sample_size(n=10**7, k=500, f=0.2, gamma=0.01)

Adaptive block sampling (Section 4)::

    from repro import CVBSampler, CVBConfig, HeapFile
    hf = HeapFile.from_values(values, layout="partial", rng=0)
    result = CVBSampler(CVBConfig(k=200, f=0.1)).run(hf, rng=1)

Distinct values (Section 6)::

    from repro import GEEEstimator
    d_hat = GEEEstimator().estimate_from_sample(sample, n)

End-to-end (the SQL Server-shaped surface)::

    from repro import Table, StatisticsManager
    stats = StatisticsManager().analyze(table, "price", k=200, f=0.1, rng=0)
    rows = stats.estimate_range(10, 99)

Observability (metrics registry + trace spans, off by default)::

    from repro.obs import metrics
    with metrics.collecting() as registry:
        StatisticsManager().analyze(table, "price", rng=0)
    print(metrics.render_text(registry))
"""

from . import baselines, core, distinct, engine, experiments, obs, sampling, storage, workloads
from ._rng import ensure_rng, spawn_rngs
from .core import (
    CVBConfig,
    CVBResult,
    CVBSampler,
    CompressedHistogram,
    EquiHeightHistogram,
    EquiWidthHistogram,
    avg_error,
    cvb_build,
    fractional_max_error,
    max_error,
    max_error_fraction,
    relative_deviation,
    separation_error,
    var_error,
)
from .distinct import FrequencyProfile, GEEEstimator, estimate_all, ratio_error, rel_error
from .engine import AutoStatistics, ColumnStatistics, StatisticsManager, Table
from .exceptions import BuildAbortedError, ReproError
from .storage import (
    FaultPolicy,
    FaultyHeapFile,
    HeapFile,
    ReadBudget,
    RecordSpec,
    RetryPolicy,
)
from .workloads import Dataset, RangeQuery, make_dataset

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "distinct",
    "engine",
    "experiments",
    "obs",
    "sampling",
    "storage",
    "workloads",
    "ensure_rng",
    "spawn_rngs",
    "CVBConfig",
    "CVBResult",
    "CVBSampler",
    "CompressedHistogram",
    "EquiHeightHistogram",
    "EquiWidthHistogram",
    "avg_error",
    "cvb_build",
    "fractional_max_error",
    "max_error",
    "max_error_fraction",
    "relative_deviation",
    "separation_error",
    "var_error",
    "FrequencyProfile",
    "GEEEstimator",
    "estimate_all",
    "ratio_error",
    "rel_error",
    "AutoStatistics",
    "ColumnStatistics",
    "StatisticsManager",
    "Table",
    "BuildAbortedError",
    "ReproError",
    "FaultPolicy",
    "FaultyHeapFile",
    "HeapFile",
    "ReadBudget",
    "RecordSpec",
    "RetryPolicy",
    "Dataset",
    "RangeQuery",
    "make_dataset",
    "__version__",
]
