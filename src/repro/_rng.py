"""Random-number-generator plumbing.

Every stochastic component of the library accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy) and
normalises it through :func:`ensure_rng`.  Experiments therefore reproduce
exactly given a seed, while library users can share one generator across
components when they need correlated streams.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RngLike", "ensure_rng", "spawn_seeds", "spawn_rngs"]

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an ``int`` seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        # The documented None -> fresh-entropy opt-in; experiment paths
        # always thread an explicit seed through this function instead.
        return np.random.default_rng()  # repro: noqa[SEED101] -- sanctioned entropy source
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}"
    )


def spawn_seeds(rng: RngLike, count: int) -> list[int]:
    """Derive *count* independent child **seeds** from *rng*.

    This is the picklable half of :func:`spawn_rngs`: the integer seeds can
    cross a process boundary, and ``np.random.default_rng(seed)`` on the far
    side reproduces exactly the generator :func:`spawn_rngs` would have built
    in-process.  The parallel trial engine relies on this to make worker
    streams bit-identical to the serial path.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return [int(s) for s in parent.integers(0, 2**63 - 1, size=count)]


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from *rng*.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so they are statistically independent and stable across runs for a fixed
    parent seed.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, count)]
