"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.  Input
validation errors derive from :class:`ParameterError`, which itself derives
from :class:`ValueError` so that idiomatic ``except ValueError`` code keeps
working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "EmptyDataError",
    "InfeasibleBoundError",
    "ConvergenceError",
    "BuildAbortedError",
    "StorageError",
    "PageFullError",
    "UnknownLayoutError",
    "TransientIOError",
    "PageCorruptionError",
    "SimulatedCrashError",
    "CatalogError",
    "StatisticsNotFoundError",
    "CheckpointError",
    "TaskQuarantinedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A caller supplied an invalid parameter value.

    Raised, for example, when a histogram is requested with ``k <= 0`` or a
    sampling bound is evaluated with an error fraction outside ``(0, 1]``.
    """


class EmptyDataError(ParameterError):
    """An operation that needs data was given an empty value set or sample."""


class InfeasibleBoundError(ReproError):
    """A sampling bound cannot be satisfied with the given parameters.

    For example, Corollary 1 may prescribe a sample size larger than the
    relation itself, or the Gibbons-Matias-Poosala bound may be undefined for
    the requested error fraction (see Example 4 of the paper).
    """


class ConvergenceError(ReproError):
    """The adaptive sampling loop failed to converge within its budget.

    Carries the partially built histogram and the trace of cross-validation
    iterations so callers can inspect (or accept) the best-effort result.

    All constructor arguments flow through ``Exception.args``, keeping the
    instance picklable across process boundaries (``TrialPool`` workers
    re-raise these in the parent process).
    """

    def __init__(self, message: str, result=None):
        super().__init__(message, result)
        self.result = result

    def __str__(self) -> str:  # hide the result arg from the rendering
        return str(self.args[0])


class BuildAbortedError(ReproError):
    """A statistics build was abandoned before producing a usable result.

    Raised by the resilience layer when a read budget runs out or too many
    pages turn out to be unreadable (see
    :class:`repro.storage.faults.ReadBudget`).  Carries whatever partial
    accounting was available so callers can report why the build died.

    All constructor arguments flow through ``Exception.args``, keeping the
    instance picklable across process boundaries (``TrialPool`` workers
    re-raise these in the parent process).
    """

    def __init__(self, message: str, snapshot: dict | None = None):
        super().__init__(message, snapshot)
        self.snapshot = snapshot or {}

    def __str__(self) -> str:  # hide the snapshot arg from the rendering
        return str(self.args[0])


class StorageError(ReproError):
    """Base class for errors in the storage simulator."""


class PageFullError(StorageError):
    """A record was appended to a page that has no free slot."""


class UnknownLayoutError(StorageError, ValueError):
    """A heap file was requested with an unrecognised layout name."""


class TransientIOError(StorageError, IOError):
    """A page read failed in a way that a retry may fix.

    The fault-injection layer raises this for simulated flaky reads; the
    retrying access paths (:class:`repro.storage.faults.RetryPolicy`) catch
    it, back off, and try again.
    """

    def __init__(self, message: str, page_id: int = -1, attempt: int = 0):
        super().__init__(message, page_id, attempt)
        self.page_id = page_id
        self.attempt = attempt

    def __str__(self) -> str:
        return str(self.args[0])


class PageCorruptionError(StorageError):
    """A page's payload failed its checksum: the page is permanently bad.

    Retrying cannot help; resilient builds skip the page and redraw a fresh
    one so the accumulated sample stays uniform over the readable pages.
    """

    def __init__(self, message: str, page_id: int = -1):
        super().__init__(message, page_id)
        self.page_id = page_id

    def __str__(self) -> str:
        return str(self.args[0])


class SimulatedCrashError(StorageError):
    """A deliberately injected crash interrupted a durable write.

    Raised by :class:`repro.storage.faults.WriteFaultInjector` at the exact
    point a real process death would occur: *after* the (possibly torn)
    bytes hit the disk but *before* the write protocol finished (the
    rename, the journal append, the truncation).  Recovery tests catch it,
    reopen the store, and assert last-known-good semantics.

    All constructor arguments flow through ``Exception.args``, keeping the
    instance picklable across process boundaries.
    """

    def __init__(self, message: str, op_index: int = -1):
        super().__init__(message, op_index)
        self.op_index = op_index

    def __str__(self) -> str:
        return str(self.args[0])


class CatalogError(ReproError):
    """Base class for errors raised by the engine catalog."""


class StatisticsNotFoundError(CatalogError, KeyError):
    """Statistics were requested for a column that has not been analyzed."""


class CheckpointError(ReproError):
    """A checkpoint directory cannot serve the requested resume.

    Raised when ``--resume`` points at a run journal recorded for a
    different sweep (different seeds, trial counts, or scale): silently
    splicing foreign results would break the bit-identical resume
    guarantee, so the mismatch is surfaced instead.

    All constructor arguments flow through ``Exception.args``, keeping the
    instance picklable across process boundaries.
    """

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


class TaskQuarantinedError(ReproError):
    """A trial chunk was quarantined after repeatedly killing its workers.

    Raised by :class:`repro.experiments.parallel.TrialPool` when the same
    chunk survives ``max_redispatch`` deterministic re-dispatches without
    completing — the signature of a poison task (one that segfaults or
    wedges its worker) rather than an unlucky crash.  Carries the chunk
    index and the seeds it contained so the caller can reproduce serially.

    All constructor arguments flow through ``Exception.args``, keeping the
    instance picklable across process boundaries.
    """

    def __init__(self, message: str, chunk_index: int = -1, seeds=None):
        super().__init__(message, chunk_index, seeds)
        self.chunk_index = chunk_index
        self.seeds = list(seeds) if seeds is not None else []

    def __str__(self) -> str:
        return str(self.args[0])
