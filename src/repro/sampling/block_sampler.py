"""Block-level (page-level) random sampling.

Block sampling reads whole pages and uses every tuple on them, amortising one
page read over ``b`` tuples.  Its statistical efficiency depends on how
correlated the tuples within a page are — which is exactly what the CVB
algorithm (:mod:`repro.core.adaptive`) adapts to.

:class:`BlockSampleStream` is the incremental access path CVB uses: it hands
out successive batches of previously unsampled pages, so the accumulated
sample is a uniform page sample without replacement.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import ParameterError
from ..storage.heapfile import HeapFile

__all__ = ["sample_block_ids", "sample_blocks", "BlockSampleStream"]


def sample_block_ids(
    num_pages: int,
    count: int,
    rng: RngLike = None,
    with_replacement: bool = False,
) -> np.ndarray:
    """*count* page ids drawn uniformly from ``[0, num_pages)``."""
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if num_pages <= 0 and count > 0:
        raise ParameterError("cannot sample pages from an empty file")
    generator = ensure_rng(rng)
    if with_replacement:
        return generator.integers(0, num_pages, size=count)
    if count > num_pages:
        raise ParameterError(
            f"cannot draw {count} pages without replacement from {num_pages}"
        )
    return generator.choice(num_pages, size=count, replace=False)


def sample_blocks(
    heapfile: HeapFile,
    num_blocks: int,
    rng: RngLike = None,
    with_replacement: bool = False,
) -> np.ndarray:
    """All tuples from *num_blocks* uniformly sampled pages."""
    page_ids = sample_block_ids(
        heapfile.num_pages, num_blocks, rng, with_replacement
    )
    return heapfile.read_pages(page_ids)


class BlockSampleStream:
    """Incremental uniform page sampling without replacement.

    Pages are pre-shuffled once; successive :meth:`take` calls consume the
    shuffled order, so the union of all batches taken so far is always a
    uniform sample of pages.  Page reads are charged to the heap file's
    :class:`~repro.storage.iostats.IOStats` as batches are taken.

    Pass *exclude* to sample only from pages not already consumed by an
    earlier stream — the resume path of
    :meth:`repro.core.adaptive.CVBSampler.refine`.
    """

    def __init__(
        self,
        heapfile: HeapFile,
        rng: RngLike = None,
        exclude: np.ndarray | None = None,
    ):
        self._file = heapfile
        generator = ensure_rng(rng)
        if exclude is None or len(exclude) == 0:
            candidates = np.arange(heapfile.num_pages)
        else:
            mask = np.ones(heapfile.num_pages, dtype=bool)
            mask[np.asarray(exclude, dtype=np.int64)] = False
            candidates = np.flatnonzero(mask)
        self._order = candidates[generator.permutation(candidates.size)]
        self._cursor = 0

    @property
    def pages_remaining(self) -> int:
        """Pages not yet handed out."""
        return int(self._order.size - self._cursor)

    @property
    def pages_taken(self) -> int:
        """Pages handed out so far."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True when every candidate page has been sampled."""
        return self._cursor >= self._order.size

    @property
    def taken_ids(self) -> np.ndarray:
        """Page ids handed out so far, in sampling order."""
        return self._order[: self._cursor].copy()

    def take(self, num_blocks: int) -> np.ndarray:
        """Values from the next *num_blocks* sampled pages.

        Returns fewer tuples when the file runs out of unsampled pages (the
        degenerate case where adaptive sampling has scanned the whole table).
        """
        if num_blocks < 0:
            raise ParameterError(
                f"num_blocks must be non-negative, got {num_blocks}"
            )
        take_ids = self._order[self._cursor : self._cursor + num_blocks]
        self._cursor += take_ids.size
        return self._file.read_pages(take_ids)

    def take_one_tuple_per_block(
        self, num_blocks: int, rng: RngLike = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Next *num_blocks* pages, plus one random tuple from each.

        Implements the cross-validation "twist" of Section 4.2: validate with
        a single randomly chosen tuple per sampled block (eliminating
        intra-block correlation from the validation signal) while still
        returning the full pages for the histogram merge.

        Returns ``(all_tuples, one_per_block)``.
        """
        generator = ensure_rng(rng)
        take_ids = self._order[self._cursor : self._cursor + num_blocks]
        self._cursor += take_ids.size
        full_chunks = []
        representatives = []
        for pid in take_ids:
            payload = self._file.read_page(int(pid))
            full_chunks.append(payload)
            if payload.size:
                representatives.append(
                    payload[int(generator.integers(0, payload.size))]
                )
        if full_chunks:
            all_tuples = np.concatenate(full_chunks)
        else:
            all_tuples = self._file.read_pages([])
        return all_tuples, np.asarray(representatives)
