"""Block-level (page-level) random sampling.

Block sampling reads whole pages and uses every tuple on them, amortising one
page read over ``b`` tuples.  Its statistical efficiency depends on how
correlated the tuples within a page are — which is exactly what the CVB
algorithm (:mod:`repro.core.adaptive`) adapts to.

:class:`BlockSampleStream` is the incremental access path CVB uses: it hands
out successive batches of previously unsampled pages, so the accumulated
sample is a uniform page sample without replacement.

All access paths optionally take a
:class:`~repro.storage.faults.RetryPolicy` (plus a
:class:`~repro.storage.faults.BudgetTracker`): transient read faults are
then retried with backoff, and permanently unreadable pages are *skipped and
replaced by fresh page draws*, so the accumulated sample stays uniform over
the readable pages.  Without a faulty file these knobs change nothing.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike, ensure_rng
from ..core import kernels
from ..exceptions import ParameterError
from ..obs import metrics as _metrics
from ..storage.faults import (
    BudgetTracker,
    RetryPolicy,
    _batched_fault_path,
    read_page_resilient,
    read_pages_resilient,
)
from ..storage.heapfile import HeapFile

__all__ = ["sample_block_ids", "sample_blocks", "BlockSampleStream"]


def sample_block_ids(
    num_pages: int,
    count: int,
    rng: RngLike = None,
    with_replacement: bool = False,
) -> np.ndarray:
    """*count* page ids drawn uniformly from ``[0, num_pages)``."""
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if num_pages <= 0 and count > 0:
        raise ParameterError("cannot sample pages from an empty file")
    generator = ensure_rng(rng)
    if with_replacement:
        return generator.integers(0, num_pages, size=count)
    if count > num_pages:
        raise ParameterError(
            f"cannot draw {count} pages without replacement from {num_pages}"
        )
    return generator.choice(num_pages, size=count, replace=False)


def sample_blocks(
    heapfile: HeapFile,
    num_blocks: int,
    rng: RngLike = None,
    with_replacement: bool = False,
    retry: RetryPolicy | None = None,
    budget: BudgetTracker | None = None,
) -> np.ndarray:
    """All tuples from *num_blocks* uniformly sampled pages.

    With *retry*, transient faults are retried and permanently unreadable
    pages are dropped from the result (a uniform sample restricted to
    readable pages is still uniform over them); without it, faults
    propagate.
    """
    page_ids = sample_block_ids(
        heapfile.num_pages, num_blocks, rng, with_replacement
    )
    if retry is None and budget is None:
        # Fast path: no fault policy configured, nothing to route around.
        return heapfile.read_pages(page_ids)  # repro: noqa[FLT001]
    if kernels.vectorized() and _batched_fault_path(heapfile):
        # Batched skip-and-redraw: page outcomes are fixed without
        # transient retries, so one resilient batch call resolves every
        # id with bit-identical accounting to the scalar loop.
        payload, _, _ = read_pages_resilient(
            heapfile, page_ids, retry=retry, budget=budget
        )
        return payload
    chunks = [
        payload
        for pid in page_ids
        if (
            payload := read_page_resilient(
                heapfile, int(pid), retry=retry, budget=budget
            )
        )
        is not None
    ]
    if not chunks:
        return heapfile.values_unaccounted()[:0]
    return np.concatenate(chunks)


class BlockSampleStream:
    """Incremental uniform page sampling without replacement.

    Pages are pre-shuffled once; successive :meth:`take` calls consume the
    shuffled order, so the union of all batches taken so far is always a
    uniform sample of pages.  Page reads are charged to the heap file's
    :class:`~repro.storage.iostats.IOStats` as batches are taken.

    Pass *exclude* to sample only from pages not already consumed by an
    earlier stream — the resume path of
    :meth:`repro.core.adaptive.CVBSampler.refine`.

    Pass *retry* (and optionally *budget*) to survive fault injection:
    transient faults are retried, and a permanently unreadable page is
    consumed from the shuffled order (so it is never offered again) but
    replaced by the next fresh page, keeping each batch at the requested
    size whenever readable pages remain.
    """

    def __init__(
        self,
        heapfile: HeapFile,
        rng: RngLike = None,
        exclude: np.ndarray | None = None,
        retry: RetryPolicy | None = None,
        budget: BudgetTracker | None = None,
    ):
        self._file = heapfile
        self._retry = retry
        self._budget = budget
        self._skipped: list[int] = []
        generator = ensure_rng(rng)
        if exclude is None or len(exclude) == 0:
            candidates = np.arange(heapfile.num_pages)
        else:
            mask = np.ones(heapfile.num_pages, dtype=bool)
            mask[np.asarray(exclude, dtype=np.int64)] = False
            candidates = np.flatnonzero(mask)
        self._order = candidates[generator.permutation(candidates.size)]
        self._cursor = 0

    @property
    def pages_remaining(self) -> int:
        """Pages not yet handed out."""
        return int(self._order.size - self._cursor)

    @property
    def pages_taken(self) -> int:
        """Pages consumed so far (delivered + permanently skipped)."""
        return self._cursor

    @property
    def pages_skipped(self) -> int:
        """Pages consumed but never delivered (permanently unreadable)."""
        return len(self._skipped)

    @property
    def skipped_ids(self) -> np.ndarray:
        """Ids of the permanently unreadable pages, in encounter order."""
        return np.asarray(self._skipped, dtype=np.int64)

    @property
    def exhausted(self) -> bool:
        """True when every candidate page has been consumed."""
        return self._cursor >= self._order.size

    @property
    def taken_ids(self) -> np.ndarray:
        """Page ids consumed so far, in sampling order."""
        return self._order[: self._cursor].copy()

    def _next_readable(self, num_blocks: int) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated payloads + per-page sizes of the next readable pages.

        Consumes the shuffled order; unreadable pages are recorded in
        ``skipped_ids`` and replaced by further draws, so fewer than
        *num_blocks* pages are delivered only when the order runs out.
        ``sizes[i]`` is the tuple count of the i-th delivered page, so
        callers can recover page boundaries from the flat payload.
        """
        fast_path = self._retry is None and self._budget is None
        if (
            fast_path
            and kernels.vectorized()
            and type(self._file).read_page is HeapFile.read_page
        ):
            # Batched fast path: without a fault policy (and without a
            # read_page override to honour) every consumed page is
            # delivered, so the batch is one slice of the shuffled order
            # and one gather.
            end = min(self._cursor + num_blocks, int(self._order.size))
            ids = self._order[self._cursor : end].astype(np.int64)
            self._cursor = end
            payload = self._file.read_pages(ids)  # repro: noqa[FLT001]
            b = self._file.blocking_factor
            lo = ids * b
            sizes = np.minimum(lo + b, self._file.num_records) - lo
            return payload, sizes
        if not fast_path and kernels.vectorized() and _batched_fault_path(
            self._file
        ):
            # Batched skip-and-redraw (the PR 6 scalar-only hole): page
            # outcomes are fixed when no transient retries are in play,
            # so each window of the shuffled order resolves in one
            # batched resilient read; skipped pages are recorded and
            # replaced by extending the window, exactly like the scalar
            # loop below — same payloads, skips, accounting and budget
            # abort points.
            chunks = []
            sizes_parts = []
            delivered = 0
            while delivered < num_blocks and self._cursor < self._order.size:
                end = min(
                    self._cursor + (num_blocks - delivered),
                    int(self._order.size),
                )
                window = self._order[self._cursor : end].astype(np.int64)
                self._cursor = end
                payload, delivered_ids, skipped = read_pages_resilient(
                    self._file, window, retry=self._retry, budget=self._budget
                )
                self._skipped.extend(skipped)
                if delivered_ids.size:
                    b = self._file.blocking_factor
                    lo = delivered_ids * b
                    sizes_parts.append(
                        np.minimum(lo + b, self._file.num_records) - lo
                    )
                    chunks.append(payload)
                    delivered += int(delivered_ids.size)
            if not chunks:
                empty = np.asarray([], dtype=np.int64)
                return self._file.values_unaccounted()[:0], empty
            return np.concatenate(chunks), np.concatenate(sizes_parts)
        chunks: list[np.ndarray] = []
        while len(chunks) < num_blocks and self._cursor < self._order.size:
            pid = int(self._order[self._cursor])
            self._cursor += 1
            if fast_path:
                # No fault policy configured, nothing to route around.
                chunks.append(self._file.read_page(pid))  # repro: noqa[FLT001]
                continue
            payload = read_page_resilient(
                self._file, pid, retry=self._retry, budget=self._budget
            )
            if payload is None:
                self._skipped.append(pid)
                continue
            chunks.append(payload)
        sizes = np.asarray([chunk.size for chunk in chunks], dtype=np.int64)
        if not chunks:
            return self._file.values_unaccounted()[:0], sizes
        return np.concatenate(chunks), sizes

    def take(self, num_blocks: int) -> np.ndarray:
        """Values from the next *num_blocks* sampled (readable) pages.

        Returns fewer tuples when the file runs out of unsampled pages (the
        degenerate case where adaptive sampling has scanned the whole table,
        or fault injection has exhausted the readable pages).
        """
        if num_blocks < 0:
            raise ParameterError(
                f"num_blocks must be non-negative, got {num_blocks}"
            )
        payload, sizes = self._next_readable(num_blocks)
        _metrics.inc("repro_block_batches_total", mode="take")
        _metrics.inc("repro_block_pages_delivered_total", int(sizes.size))
        return payload

    def take_one_tuple_per_block(
        self, num_blocks: int, rng: RngLike = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Next *num_blocks* readable pages, plus one random tuple from each.

        Implements the cross-validation "twist" of Section 4.2: validate with
        a single randomly chosen tuple per sampled block (eliminating
        intra-block correlation from the validation signal) while still
        returning the full pages for the histogram merge.

        Returns ``(all_tuples, one_per_block)``.
        """
        generator = ensure_rng(rng)
        all_tuples, sizes = self._next_readable(num_blocks)
        _metrics.inc("repro_block_batches_total", mode="one_per_block")
        _metrics.inc("repro_block_pages_delivered_total", int(sizes.size))
        if sizes.size == 0:
            return all_tuples, np.asarray([])
        # One uniform intra-page index per (non-empty) delivered page; the
        # kernel draws them in page order, so the RNG stream advances
        # exactly as the historical per-page loop did.
        starts = np.cumsum(sizes) - sizes
        nonempty = sizes > 0
        draws = kernels.one_per_block_draws(generator, sizes[nonempty])
        representatives = all_tuples[starts[nonempty] + draws]
        return all_tuples, representatives
