"""Design effect: quantifying Section 4.1's "effective sampling rate".

The paper's scenario analysis says a sampled page is worth anywhere between
``b`` independent tuples (uncorrelated pages, scenario a) and ~1 tuple
(fully correlated pages, scenario b).  Survey sampling has the standard
quantitative form of this statement: under cluster sampling with clusters
of size ``b`` and *intraclass correlation* ``rho``, the variance of
estimates is inflated by the **design effect**

    ``deff = 1 + (b - 1) * rho``

so a block sample of ``r`` tuples is only worth ``r / deff`` independent
ones.  This module estimates ``rho`` from a pilot sample of pages (rank-
based, so it is distribution-free like the rest of the paper) and converts
Corollary 1's tuple budget into a corrected block budget.

The CVB algorithm never needs this — cross-validation discovers the
effective rate implicitly — but the explicit model (i) predicts what CVB
will discover, (ii) lets a planner price a layout before sampling, and
(iii) turns Figure 7's two-point comparison into a formula.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from .._rng import RngLike
from ..core import bounds
from ..exceptions import EmptyDataError, ParameterError
from ..storage.heapfile import HeapFile
from .block_sampler import sample_blocks

__all__ = [
    "intraclass_correlation",
    "design_effect",
    "effective_sample_size",
    "estimate_rho_from_pilot",
    "required_blocks_with_correlation",
]


def intraclass_correlation(pages: list[np.ndarray]) -> float:
    """Rank-based intraclass correlation of values within pages.

    Computes the classic one-way ANOVA estimator on the *ranks* of the
    pooled values (ranks make it distribution-free; raw values would let a
    single outlier page dominate).  Returns a value in ``[-1, 1]``:
    0 for random placement, ~1 when pages are internally homogeneous
    (sorted or value-clustered layouts).
    """
    pages = [np.asarray(p) for p in pages if np.asarray(p).size > 0]
    if len(pages) < 2:
        raise ParameterError(
            "need at least two non-empty pages to estimate correlation"
        )
    pooled = np.concatenate(pages)
    if pooled.size < 3:
        raise EmptyDataError("too few values to estimate correlation")
    # Midranks: tied values MUST share one rank — positional tie-breaking
    # would hand duplicates page-ordered ranks and fabricate correlation on
    # heavily duplicated (Zipf) columns.
    ranks = stats.rankdata(pooled, method="average").astype(np.float64)

    grand_mean = ranks.mean()
    offset = 0
    between = 0.0
    within = 0.0
    sizes = []
    for page in pages:
        m = page.size
        chunk = ranks[offset : offset + m]
        offset += m
        sizes.append(m)
        between += m * (chunk.mean() - grand_mean) ** 2
        within += ((chunk - chunk.mean()) ** 2).sum()

    num_pages = len(pages)
    n = pooled.size
    mean_size = (n - sum(s * s for s in sizes) / n) / (num_pages - 1)
    ms_between = between / (num_pages - 1)
    ms_within = within / max(1, n - num_pages)
    denominator = ms_between + (mean_size - 1) * ms_within
    if denominator <= 0:
        return 0.0
    rho = (ms_between - ms_within) / denominator
    return float(min(1.0, max(-1.0, rho)))


def design_effect(blocking_factor: int, rho: float) -> float:
    """``deff = 1 + (b - 1) * rho``.

    Negative rho (stratified-like layouts, where each page deliberately
    spans the domain) genuinely makes a page worth *more* than ``b``
    independent tuples; the result is floored at ``1/b`` only to keep
    effective sample sizes finite.
    """
    if blocking_factor <= 0:
        raise ParameterError(
            f"blocking_factor must be positive, got {blocking_factor}"
        )
    if not -1.0 <= rho <= 1.0:
        raise ParameterError(f"rho must be in [-1, 1], got {rho}")
    return max(1.0 / blocking_factor, 1.0 + (blocking_factor - 1) * rho)


def effective_sample_size(
    tuples_sampled: int, blocking_factor: int, rho: float
) -> float:
    """How many independent tuples a block sample is actually worth."""
    if tuples_sampled < 0:
        raise ParameterError(
            f"tuples_sampled must be non-negative, got {tuples_sampled}"
        )
    return tuples_sampled / design_effect(blocking_factor, rho)


def estimate_rho_from_pilot(
    heapfile: HeapFile,
    pilot_blocks: int = 50,
    rng: RngLike = None,
) -> float:
    """Estimate the intraclass correlation from a small pilot page sample.

    Reads *pilot_blocks* uniformly sampled pages (charged to the file's I/O
    stats like any access) and runs :func:`intraclass_correlation` on them.
    """
    if pilot_blocks < 2:
        raise ParameterError(
            f"pilot_blocks must be at least 2, got {pilot_blocks}"
        )
    pilot_blocks = min(pilot_blocks, heapfile.num_pages)
    payload = sample_blocks(heapfile, pilot_blocks, rng=rng)
    b = heapfile.blocking_factor
    pages = [payload[i : i + b] for i in range(0, payload.size, b)]
    return intraclass_correlation(pages)


def required_blocks_with_correlation(
    n: int,
    k: int,
    f: float,
    gamma: float,
    blocking_factor: int,
    rho: float,
) -> int:
    """Corollary 1's budget converted to blocks under correlation *rho*.

    The tuple requirement ``r`` is inflated by the design effect before
    dividing by the blocking factor:

        ``g = ceil(r * deff / b)``

    With ``rho = 0`` this is the paper's ``g_0 = r/b``; with ``rho = 1``
    it degenerates to ``g = r`` — exactly the scenario (a)/(b) endpoints of
    Section 4.1, with scenario (c) interpolated by the measured rho.
    """
    r = bounds.corollary1_sample_size(n, k, f, gamma)
    deff = design_effect(blocking_factor, rho)
    return max(1, math.ceil(r * deff / blocking_factor))
