"""Step-size schedules for the adaptive (CVB) sampling loop.

The algorithm of Section 4.2 samples ``g_i`` blocks in iteration ``i``.  The
paper's analysis recommends the doubling schedule ``g_0 = g, g_1 = g,
g_2 = 2g, g_3 = 4g, ...`` (each increment equal to everything sampled so
far), while the SQL Server prototype of Section 7.1 uses accumulated sample
sizes of ``5 * i * sqrt(n)`` tuples.  Both are provided, plus a linear
schedule as an ablation baseline; the CVB implementation accepts any
:class:`StepSchedule`.

A schedule yields *increment* sizes, in blocks, via :meth:`increments`.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..exceptions import ParameterError

__all__ = [
    "StepSchedule",
    "DoublingSchedule",
    "LinearSchedule",
    "SqrtSchedule",
    "make_schedule",
]


class StepSchedule:
    """Interface: an unbounded iterator of per-iteration block counts."""

    def increments(self) -> Iterator[int]:
        """Yield the number of blocks to sample in iterations 1, 2, 3, ..."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short label for reports."""
        return type(self).__name__


class DoublingSchedule(StepSchedule):
    """The paper's analytical recommendation: ``g, g, 2g, 4g, 8g, ...``

    Each increment matches the total sampled so far, so the accumulated
    sample doubles every iteration.  Guarantees at most 2x oversampling
    relative to the unknown optimal sample size (Section 4.2).
    """

    def __init__(self, initial_blocks: int):
        if initial_blocks <= 0:
            raise ParameterError(
                f"initial_blocks must be positive, got {initial_blocks}"
            )
        self.initial_blocks = int(initial_blocks)

    def increments(self) -> Iterator[int]:
        """Yield the doubling increment sizes."""
        yield self.initial_blocks
        total = self.initial_blocks
        while True:
            yield total
            total *= 2

    def describe(self) -> str:
        """Human-readable description of the schedule."""
        return f"doubling(g0={self.initial_blocks})"


class LinearSchedule(StepSchedule):
    """Constant increments: ``g, g, g, ...`` — the ablation baseline.

    Never oversamples by more than one increment but needs many more
    cross-validation rounds (and histogram rebuilds) to reach a large target.
    """

    def __init__(self, step_blocks: int):
        if step_blocks <= 0:
            raise ParameterError(
                f"step_blocks must be positive, got {step_blocks}"
            )
        self.step_blocks = int(step_blocks)

    def increments(self) -> Iterator[int]:
        """Yield the constant increment sizes."""
        while True:
            yield self.step_blocks

    def describe(self) -> str:
        """Human-readable description of the schedule."""
        return f"linear(step={self.step_blocks})"


class SqrtSchedule(StepSchedule):
    """The SQL Server prototype schedule of Section 7.1.

    Accumulated sample sizes follow ``5 * i * sqrt(n)`` tuples for
    ``i = 1, 2, ...``; increments are the successive differences, converted
    to blocks of ``b`` tuples (rounded up, minimum one block).
    """

    def __init__(self, n: int, blocking_factor: int, multiplier: float = 5.0):
        if n <= 0:
            raise ParameterError(f"n must be positive, got {n}")
        if blocking_factor <= 0:
            raise ParameterError(
                f"blocking_factor must be positive, got {blocking_factor}"
            )
        if multiplier <= 0:
            raise ParameterError(f"multiplier must be positive, got {multiplier}")
        self.n = int(n)
        self.blocking_factor = int(blocking_factor)
        self.multiplier = float(multiplier)

    def increments(self) -> Iterator[int]:
        """Yield increments growing with the square root of the round."""
        step_tuples = self.multiplier * math.sqrt(self.n)
        blocks_per_step = max(1, math.ceil(step_tuples / self.blocking_factor))
        while True:
            yield blocks_per_step

    def describe(self) -> str:
        """Human-readable description of the schedule."""
        return f"sqrt(n={self.n}, mult={self.multiplier:g})"


def make_schedule(
    name: str,
    initial_blocks: int,
    n: int | None = None,
    blocking_factor: int | None = None,
) -> StepSchedule:
    """Factory used by experiments: ``doubling``, ``linear`` or ``sqrt``."""
    if name == "doubling":
        return DoublingSchedule(initial_blocks)
    if name == "linear":
        return LinearSchedule(initial_blocks)
    if name == "sqrt":
        if n is None or blocking_factor is None:
            raise ParameterError(
                "sqrt schedule needs n and blocking_factor"
            )
        return SqrtSchedule(n, blocking_factor)
    raise ParameterError(
        f"unknown schedule {name!r}; choose doubling, linear or sqrt"
    )
