"""Record-level (tuple-level) random sampling.

Section 3 of the paper analyses sampling individual tuples uniformly at
random.  The analysis assumes sampling *with* replacement (binomial tails);
sampling without replacement only helps (hypergeometric concentration), so
both are provided.  :func:`sample_records_from_file` runs record-level
sampling against the storage simulator, charging a full page read per tuple —
demonstrating why Section 4 moves to block-level sampling.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import BuildAbortedError, ParameterError
from ..obs import metrics as _metrics
from ..storage.faults import BudgetTracker, RetryPolicy, read_record_resilient
from ..storage.heapfile import HeapFile

__all__ = [
    "sample_with_replacement",
    "sample_without_replacement",
    "bernoulli_sample",
    "reservoir_sample",
    "sample_records_from_file",
]


def _check_sample_size(r: int) -> None:
    if r < 0:
        raise ParameterError(f"sample size must be non-negative, got {r}")


def sample_with_replacement(
    values: np.ndarray, r: int, rng: RngLike = None
) -> np.ndarray:
    """*r* uniform draws from *values*, with replacement.

    This is the sampling model of Theorems 4, 5 and 7.
    """
    _check_sample_size(r)
    values = np.asarray(values)
    if r > 0 and values.size == 0:
        raise ParameterError("cannot sample from an empty value set")
    generator = ensure_rng(rng)
    indices = generator.integers(0, values.size, size=r) if r else np.empty(0, int)
    return values[indices]


def sample_without_replacement(
    values: np.ndarray, r: int, rng: RngLike = None
) -> np.ndarray:
    """*r* uniform draws from *values*, without replacement."""
    _check_sample_size(r)
    values = np.asarray(values)
    if r > values.size:
        raise ParameterError(
            f"cannot draw {r} records without replacement from {values.size}"
        )
    generator = ensure_rng(rng)
    indices = generator.choice(values.size, size=r, replace=False)
    return values[indices]


def bernoulli_sample(
    values: np.ndarray, p: float, rng: RngLike = None
) -> np.ndarray:
    """Keep each value independently with probability *p*.

    The sample size is itself random (binomial); useful for page-level
    percentage sampling of the kind SQL Server 7.0 exposes.
    """
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    values = np.asarray(values)
    generator = ensure_rng(rng)
    mask = generator.random(values.size) < p
    return values[mask]


def reservoir_sample(
    stream: Iterable, r: int, rng: RngLike = None
) -> np.ndarray:
    """Uniform sample of size *r* (without replacement) from a one-pass stream.

    Vitter's Algorithm R.  Returns fewer than *r* items when the stream is
    shorter than *r*.
    """
    _check_sample_size(r)
    generator = ensure_rng(rng)
    reservoir: list = []
    for seen, item in enumerate(stream):
        if seen < r:
            reservoir.append(item)
        else:
            j = int(generator.integers(0, seen + 1))
            if j < r:
                reservoir[j] = item
    return np.asarray(reservoir)


def sample_records_from_file(
    heapfile: HeapFile,
    r: int,
    rng: RngLike = None,
    with_replacement: bool = True,
    retry: RetryPolicy | None = None,
    budget: BudgetTracker | None = None,
) -> np.ndarray:
    """Record-level sampling against the storage simulator.

    Each sampled tuple is fetched through :meth:`HeapFile.read_record`, which
    charges a full page read — the cost model that motivates block-level
    sampling (start of Section 4: "scanning one tuple off the disk is not
    much faster than scanning the entire group of tuples ... in the same
    disk block").

    With *retry*, transient faults are retried with backoff, and a record on
    a permanently unreadable page is replaced by a fresh uniform draw (from
    the as-yet-untried records, in the without-replacement mode), so the
    sample stays uniform over readable records.  When fewer than *r*
    readable records exist, the sample is shorter than requested.  Without
    *retry*, storage faults propagate unchanged.
    """
    _check_sample_size(r)
    n = heapfile.num_records
    if r > 0 and n == 0:
        raise ParameterError("cannot sample from an empty heap file")
    generator = ensure_rng(rng)
    mode = "with_replacement" if with_replacement else "without_replacement"
    if retry is None and budget is None:
        if with_replacement:
            indices = generator.integers(0, n, size=r)
        else:
            if r > n:
                raise ParameterError(
                    f"cannot draw {r} records without replacement from {n}"
                )
            indices = generator.choice(n, size=r, replace=False)
        # Fast path: no fault policy configured, nothing to route around.
        sample = np.asarray(
            [heapfile.read_record(int(i)) for i in indices]  # repro: noqa[FLT001]
        )
        _metrics.inc("repro_record_samples_total", sample.size, mode=mode)
        return sample
    if not with_replacement and r > n:
        raise ParameterError(
            f"cannot draw {r} records without replacement from {n}"
        )
    sample = _sample_records_resilient(
        heapfile, r, generator, with_replacement, retry, budget
    )
    _metrics.inc("repro_record_samples_total", sample.size, mode=mode)
    return sample


def _sample_records_resilient(
    heapfile: HeapFile,
    r: int,
    generator: np.random.Generator,
    with_replacement: bool,
    retry: RetryPolicy | None,
    budget: BudgetTracker | None,
) -> np.ndarray:
    """Skip-and-redraw record sampling (see :func:`sample_records_from_file`).

    Records on unreadable pages are remembered so the redraw loop stops once
    every remaining candidate is known-lost instead of spinning forever.
    """
    b = heapfile.blocking_factor
    lost_pages: set[int] = set()
    tried: set[int] = set()  # without-replacement: indices already consumed
    out: list = []
    while len(out) < r:
        if not with_replacement and len(tried) >= heapfile.num_records:
            break  # every record was tried; the rest were unreadable
        if with_replacement and len(lost_pages) * b >= heapfile.num_records:
            break  # every page is known lost
        index = int(generator.integers(0, heapfile.num_records))
        if not with_replacement:
            if index in tried:
                continue
            tried.add(index)
        if index // b in lost_pages:
            continue
        value = read_record_resilient(heapfile, index, retry=retry, budget=budget)
        if value is None:
            lost_pages.add(index // b)
            continue
        out.append(value)
    return np.asarray(out)
