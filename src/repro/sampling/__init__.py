"""Sampling primitives: record-level, block-level, and step schedules."""

from .block_sampler import BlockSampleStream, sample_block_ids, sample_blocks
from .design_effect import (
    design_effect,
    effective_sample_size,
    estimate_rho_from_pilot,
    intraclass_correlation,
    required_blocks_with_correlation,
)
from .page_samplers import bernoulli_page_sample, systematic_page_sample
from .record_sampler import (
    bernoulli_sample,
    reservoir_sample,
    sample_records_from_file,
    sample_with_replacement,
    sample_without_replacement,
)
from .schedule import (
    DoublingSchedule,
    LinearSchedule,
    SqrtSchedule,
    StepSchedule,
    make_schedule,
)

__all__ = [
    "BlockSampleStream",
    "sample_block_ids",
    "sample_blocks",
    "design_effect",
    "effective_sample_size",
    "estimate_rho_from_pilot",
    "intraclass_correlation",
    "required_blocks_with_correlation",
    "bernoulli_page_sample",
    "systematic_page_sample",
    "bernoulli_sample",
    "reservoir_sample",
    "sample_records_from_file",
    "sample_with_replacement",
    "sample_without_replacement",
    "DoublingSchedule",
    "LinearSchedule",
    "SqrtSchedule",
    "StepSchedule",
    "make_schedule",
]
