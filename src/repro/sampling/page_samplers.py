"""Alternative page-sampling strategies, for comparison with uniform
block sampling.

SQL Server 7.0's native facility samples "a percentage of the file"
(Section 7.1); two common implementations are modelled here, with their
known failure modes demonstrable in benchmarks:

- :func:`bernoulli_page_sample` — keep each page independently with
  probability p (the TABLESAMPLE SYSTEM flavour): unbiased, but the sample
  size is random.
- :func:`systematic_page_sample` — every j-th page from a random start:
  sequential I/O friendly, but *biased* whenever the layout is periodic or
  sorted (the stride can align with on-disk structure).

Both charge page reads through the heap file's I/O accounting, like every
other access path.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import ParameterError
from ..storage.heapfile import HeapFile

__all__ = ["bernoulli_page_sample", "systematic_page_sample"]


def bernoulli_page_sample(
    heapfile: HeapFile, p: float, rng: RngLike = None
) -> np.ndarray:
    """All tuples from pages kept independently with probability *p*.

    The expected number of pages read is ``p * num_pages``; the realised
    count is binomial.  Equivalent in distribution to uniform block sampling
    with a random size, so all block-sampling analysis applies.
    """
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    generator = ensure_rng(rng)
    keep = np.flatnonzero(generator.random(heapfile.num_pages) < p)
    # Comparison strategy modelling the native facility verbatim; it has
    # no fault-policy parameters, so there is nothing to route around.
    return heapfile.read_pages(keep)  # repro: noqa[FLT001]


def systematic_page_sample(
    heapfile: HeapFile, stride: int, rng: RngLike = None
) -> np.ndarray:
    """Every *stride*-th page starting from a uniformly random offset.

    Reads ``~num_pages / stride`` pages with perfectly sequential access —
    the cheapest possible I/O pattern — but the estimator-facing caveat is
    real: under sorted or periodic layouts a fixed stride systematically
    over- or under-represents regions, a bias uniform sampling cannot have.
    """
    if stride <= 0:
        raise ParameterError(f"stride must be positive, got {stride}")
    generator = ensure_rng(rng)
    if heapfile.num_pages == 0:
        return heapfile.read_pages([])  # repro: noqa[FLT001]
    offset = int(generator.integers(0, min(stride, heapfile.num_pages)))
    page_ids = np.arange(offset, heapfile.num_pages, stride)
    # Comparison strategy modelling the native facility verbatim; it has
    # no fault-policy parameters, so there is nothing to route around.
    return heapfile.read_pages(page_ids)  # repro: noqa[FLT001]
