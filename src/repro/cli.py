"""Command-line interface: ``python -m repro <command>``.

Four subcommands expose the library to shell users:

``analyze``
    Build sampled statistics for a column stored in a ``.npy`` / ``.csv``
    / ``.txt`` file (one value per row, or pick a CSV column), print the
    histogram, density and distinct-count statistics, and optionally
    ``--save`` the bundle as JSON.

``estimate``
    Answer range / equality / distinct queries from a saved statistics
    bundle — the optimizer's view, detached from the data.

``plan``
    The Corollary 1 planner: given any two of (sample size, bucket count,
    error fraction), solve for the third.

``demo``
    Generate one of the paper's synthetic datasets and run the full
    adaptive-sampling pipeline on it — a zero-setup tour.

``figure``
    Regenerate the data series behind one of the paper's figures (3-12),
    optionally fanned out over worker processes with ``--workers`` /
    ``--chunk-size`` — results are bit-identical for any worker count.

``chaos``
    Fault-injection sweep: run the retrying CVB build against storage with
    transient read failures and corrupt pages, and report the achieved
    max-error against the Theorem-7 targets.  Deterministic for a fixed
    ``--seed``, for any ``--workers``.

``metrics``
    Observability wrapper: run any other subcommand with the
    :mod:`repro.obs` metrics registry collecting, then dump the registry
    (``--format text|json|prom``, optionally ``--out FILE``) after the
    wrapped command finishes.  ``prom`` is the strict Prometheus text
    exposition (cumulative buckets, ``+Inf``, escaped labels).  Example:
    ``python -m repro metrics demo zipf2``.

``bench``
    Deterministic benchmark harness (:mod:`repro.obs.bench`): run the
    scenario registry, write a schema-versioned ``BENCH_*.json`` report,
    optionally ``--compare`` against a baseline (logical costs exact,
    wall-clock threshold-gated), ``--update-baseline``, or ``--profile``
    each scenario through :mod:`cProfile`.

``lint``
    Determinism & invariant static analysis (:mod:`repro.lint`): run the
    project rule set (DET/OBS/EXC/FLT/DOC) over ``src/repro`` and the
    Markdown docs, print a text or JSON report, and exit nonzero on any
    unsuppressed error-severity finding — the CI gate.  ``--flow`` adds
    the whole-program SEED1xx/CON1xx analysis (symbol table + call
    graph), ``--graph FILE`` dumps that call graph as Graphviz DOT, and
    ``--changed-only`` restricts findings to files touched versus the
    merge-base with ``main`` (the fast pre-push loop).  Supports
    ``--rules`` selection, ``--baseline`` diffing and ``--list-rules``.

``serve``
    Statistics-as-a-service (:mod:`repro.serve`): run the asyncio
    JSON-lines TCP server over synthetic tables (``--table
    NAME=DATASET:N``, repeatable), or drive the deterministic closed-loop
    load generator against an in-process server (``--loadgen``) or a
    running one (``--connect HOST:PORT``).  The loadgen's logical summary
    (``--out``) is bit-identical across runs and ``--clients`` counts;
    wall latencies (p50/p99) go to stdout / ``--wall-out``.  ``--store
    DIR`` persists the catalog crash-safely and warm-starts from it.
    ``--telemetry`` enables live runtime telemetry (latency sketch,
    windowed series, SLO tracking) behind the ``stats`` / ``health`` /
    ``watch`` endpoints.  See docs/SERVING.md.

``top``
    Terminal monitor for a running server (:mod:`repro.serve.monitor`):
    poll the ``stats`` and ``health`` endpoints of ``--connect
    HOST:PORT`` and render text frames (``--once`` for a single frame,
    ``--interval`` seconds between frames otherwise); ``--out FILE``
    writes the byte-stable logical snapshot of the last frame.  See
    docs/TELEMETRY.md.

``figure``, ``chaos`` and ``bench`` additionally accept ``--trace FILE`` to
record a structured span trace (JSON lines) of the run; see
docs/OBSERVABILITY.md for how to read one.  They also accept
``--checkpoint DIR`` / ``--resume`` for crash-safe resumable runs
(:mod:`repro.durability`): completed work is journaled to
``DIR/run.journal``, and a killed run resumed with ``--resume`` produces
output bit-identical to an uninterrupted one.  See docs/DURABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

import numpy as np

from ._rng import ensure_rng
from .core import bounds
from .engine import StatisticsManager, Table
from .exceptions import ReproError
from .storage import LAYOUT_NAMES
from .workloads import DATASET_NAMES, make_dataset

__all__ = ["main", "build_parser"]


def _rate_list(text: str) -> tuple[float, ...]:
    try:
        rates = tuple(float(r) for r in text.split(",") if r.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        ) from None
    if not rates:
        raise argparse.ArgumentTypeError("expected at least one sampling rate")
    return rates


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Random Sampling for Histogram Construction (SIGMOD 1998) — "
            "reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="build sampled statistics for a column file"
    )
    analyze.add_argument("path", help=".npy, .csv or .txt file with values")
    analyze.add_argument(
        "--column", type=int, default=0, help="CSV column index (default 0)"
    )
    analyze.add_argument("--k", type=int, default=100, help="histogram buckets")
    analyze.add_argument(
        "--f", type=float, default=0.2, help="target max error fraction"
    )
    analyze.add_argument("--gamma", type=float, default=0.01)
    analyze.add_argument(
        "--layout", choices=LAYOUT_NAMES, default="random",
        help="simulated on-disk layout",
    )
    analyze.add_argument(
        "--method", choices=("cvb", "record", "fullscan"), default="cvb"
    )
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument(
        "--show-buckets", type=int, default=0, metavar="N",
        help="print the first N histogram buckets",
    )
    analyze.add_argument(
        "--save", metavar="STATS.json",
        help="write the statistics bundle to a JSON file",
    )

    plan = sub.add_parser("plan", help="Corollary 1 sample-size planning")
    plan.add_argument("--n", type=int, required=True, help="table rows")
    plan.add_argument("--k", type=int, help="histogram buckets")
    plan.add_argument("--f", type=float, help="max error fraction")
    plan.add_argument("--r", type=int, help="sample size budget")
    plan.add_argument("--gamma", type=float, default=0.01)

    estimate = sub.add_parser(
        "estimate", help="answer queries from saved statistics"
    )
    estimate.add_argument("stats", help="statistics JSON from analyze --save")
    estimate.add_argument(
        "--range", nargs=2, type=float, metavar=("LO", "HI"),
        help="estimate rows with LO <= value <= HI",
    )
    estimate.add_argument(
        "--equals", type=float, metavar="V",
        help="estimate rows with value = V",
    )
    estimate.add_argument(
        "--distinct", action="store_true", help="print the distinct estimate"
    )

    demo = sub.add_parser("demo", help="run the pipeline on synthetic data")
    demo.add_argument(
        "dataset", nargs="?", default="zipf2", choices=DATASET_NAMES
    )
    demo.add_argument("--n", type=int, default=100_000)
    demo.add_argument("--k", type=int, default=50)
    demo.add_argument("--f", type=float, default=0.2)
    demo.add_argument("--layout", choices=LAYOUT_NAMES, default="random")
    demo.add_argument("--seed", type=int, default=0)

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure's data series"
    )
    figure.add_argument(
        "name",
        choices=("3_4", "5", "6", "7", "8", "9", "10", "11", "12"),
        help="which paper figure to regenerate",
    )
    figure.add_argument(
        "--scale", choices=("small", "medium", "paper"), default=None,
        help="experiment scale (default: $REPRO_SCALE or 'small')",
    )
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the Monte-Carlo trials (default 1; "
             "results are bit-identical for any value)",
    )
    figure.add_argument(
        "--chunk-size", type=int, default=None,
        help="trials per worker task (default: auto)",
    )
    figure.add_argument(
        "--n", type=int, default=None, help="override the scale's table size"
    )
    figure.add_argument(
        "--k", type=int, default=None, help="override the bucket count"
    )
    figure.add_argument(
        "--trials", type=int, default=None,
        help="override trials per measured point",
    )
    figure.add_argument(
        "--rates", default=None, metavar="R1,R2,...", type=_rate_list,
        help="override the sampling-rate grid (comma-separated)",
    )
    figure.add_argument(
        "--out", metavar="FILE", help="also write the table to FILE"
    )
    figure.add_argument(
        "--checkpoint", metavar="DIR",
        help="journal completed trial chunks to DIR/run.journal so a "
             "killed run can be resumed",
    )
    figure.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint, splice previously journaled chunks back "
             "instead of re-running them (bit-identical to an "
             "uninterrupted run)",
    )
    figure.add_argument(
        "--trace", metavar="FILE",
        help="record a span trace of the run to FILE (JSON lines)",
    )

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweep of the resilient CVB build"
    )
    chaos.add_argument(
        "--fault-rate", dest="fault_rates", default=(0.0, 0.01, 0.05, 0.1),
        metavar="R1,R2,...", type=_rate_list,
        help="transient read-failure rates to sweep (default 0,0.01,0.05,0.1)",
    )
    chaos.add_argument(
        "--corrupt", type=float, default=0.01,
        help="fraction of pages permanently corrupt (default 0.01)",
    )
    chaos.add_argument("--n", type=int, default=100_000, help="table rows")
    chaos.add_argument("--k", type=int, default=50, help="histogram buckets")
    chaos.add_argument(
        "--f", type=float, default=0.2, help="target max error fraction"
    )
    chaos.add_argument(
        "--dataset", default="zipf2", choices=DATASET_NAMES
    )
    chaos.add_argument(
        "--trials", type=int, default=3, help="trials per fault rate"
    )
    chaos.add_argument(
        "--blocking-factor", type=int, default=50, help="records per page"
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=5,
        help="read attempts per page before the page is skipped",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (results are bit-identical for any value)",
    )
    chaos.add_argument("--chunk-size", type=int, default=None)
    chaos.add_argument(
        "--out", metavar="FILE", help="also write the report to FILE"
    )
    chaos.add_argument(
        "--checkpoint", metavar="DIR",
        help="journal completed trial chunks to DIR/run.journal so a "
             "killed run can be resumed",
    )
    chaos.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint, splice previously journaled chunks back "
             "instead of re-running them",
    )
    chaos.add_argument(
        "--trace", metavar="FILE",
        help="record a span trace of the run to FILE (JSON lines)",
    )

    bench = sub.add_parser(
        "bench",
        help="deterministic benchmark harness with baseline comparison",
    )
    bench.add_argument(
        "--scenario", action="append", metavar="NAME", dest="scenarios",
        help="run only this scenario (repeatable; default: all)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    bench.add_argument(
        "--scale", choices=("smoke", "default"), default=None,
        help="workload size (default: $REPRO_BENCH_SCALE or 'smoke')",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per scenario; the median is reported (default 3)",
    )
    bench.add_argument(
        "--warmup", type=int, default=1,
        help="untimed runs before timing starts (default 1)",
    )
    bench.add_argument(
        "--out", metavar="FILE",
        help="report path (default BENCH_<YYYYMMDD>_<shortsha>.json)",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE",
        help="gate against a baseline report: exit nonzero when a logical "
             "cost drifts",
    )
    bench.add_argument(
        "--wall-tolerance", type=float, default=None, metavar="RATIO",
        help="with --compare, also fail when a scenario's wall-clock "
             "median exceeds RATIO x the baseline (default: report only)",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="also write the report to benchmarks/baseline.json",
    )
    bench.add_argument(
        "--profile", metavar="DIR",
        help="cProfile every scenario into DIR (<name>.pstats + "
             "<name>_top.txt)",
    )
    bench.add_argument(
        "--checkpoint", metavar="DIR",
        help="journal completed scenario results to DIR/run.journal so a "
             "killed run can be resumed",
    )
    bench.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint, reuse previously journaled scenario "
             "results instead of re-measuring them",
    )
    bench.add_argument(
        "--trace", metavar="FILE",
        help="record a span trace of the run to FILE (JSON lines)",
    )
    bench.add_argument(
        "--kernels", choices=("scalar", "vector"), default=None,
        help="pin the kernel implementation family for the whole run "
             "(default: $REPRO_KERNELS or 'vector')",
    )

    lint = sub.add_parser(
        "lint",
        help="determinism & invariant static analysis (repro.lint)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    lint.add_argument(
        "--rules", metavar="ID", nargs="+",
        help="run only these rule ids (default: all registered rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules with severity and summary, then exit",
    )
    lint.add_argument(
        "--root", metavar="DIR",
        help="repo root to lint (default: this checkout)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE",
        help="subtract known findings recorded in FILE; only new "
             "findings fail the gate",
    )
    lint.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    lint.add_argument(
        "--out", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    lint.add_argument(
        "--flow", action="store_true",
        help="enable the whole-program SEED1xx/CON1xx flow analysis "
             "(symbol table + call graph over src/repro)",
    )
    lint.add_argument(
        "--graph", metavar="FILE",
        help="write the project call graph as Graphviz DOT to FILE",
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="lint only files changed vs the merge-base with main "
             "(plus untracked files)",
    )

    serve = sub.add_parser(
        "serve",
        help="statistics server (asyncio TCP) and deterministic loadgen",
    )
    serve.add_argument(
        "--table", action="append", metavar="NAME=DATASET:N",
        dest="tables",
        help="serve a synthetic table: NAME=DATASET:N with DATASET one of "
             f"{', '.join(DATASET_NAMES)} (repeatable; default "
             "orders=zipf2:20000)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="server seed: every ANALYZE RNG derives from it (default 0)",
    )
    serve.add_argument(
        "--k", type=int, default=64,
        help="default histogram buckets for server-side builds (default 64)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=128,
        help="LRU statistics-cache capacity in columns (default 128)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=2,
        help="concurrent ANALYZE builds admitted (default 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=8,
        help="queued ANALYZE builds before shedding (default 8)",
    )
    serve.add_argument(
        "--store", metavar="DIR",
        help="durable CatalogStore directory: crash-safe statistics and "
             "warm start on restart",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; printed as SERVE_READY)",
    )
    serve.add_argument(
        "--ready-file", metavar="FILE",
        help="also write the SERVE_READY line to FILE (atomically)",
    )
    serve.add_argument(
        "--loadgen", action="store_true",
        help="run the closed-loop load generator against an in-process "
             "server instead of serving TCP",
    )
    serve.add_argument(
        "--connect", metavar="HOST:PORT",
        help="run the load generator against an already-running server",
    )
    serve.add_argument(
        "--requests", type=int, default=200,
        help="loadgen: concurrent-phase requests (default 200)",
    )
    serve.add_argument(
        "--clients", type=int, default=4,
        help="loadgen: client threads/connections (default 4); logical "
             "summaries are bit-identical for any value",
    )
    serve.add_argument(
        "--loadgen-seed", type=int, default=0,
        help="loadgen: schedule seed (default 0)",
    )
    serve.add_argument(
        "--churn-rows", type=int, default=0,
        help="loadgen: modifications reported per column between warmup "
             "and the query phase (default 0 = no refresh)",
    )
    serve.add_argument(
        "--out", metavar="FILE",
        help="loadgen: write the byte-stable logical summary JSON to FILE",
    )
    serve.add_argument(
        "--wall-out", metavar="FILE",
        help="loadgen: write the wall-latency summary (p50/p99) to FILE",
    )
    serve.add_argument(
        "--trace", metavar="FILE",
        help="record a span trace of the run (JSON lines)",
    )
    serve.add_argument(
        "--telemetry", action="store_true",
        help="enable live runtime telemetry (latency sketch, windowed "
             "series, SLO tracking) behind the stats/health/watch "
             "endpoints",
    )

    top = sub.add_parser(
        "top",
        help="terminal monitor for a running statistics server",
    )
    top.add_argument(
        "--connect", metavar="HOST:PORT", required=True,
        help="address of the running server to monitor",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between frames (default 1.0)",
    )
    top.add_argument(
        "--frames", type=int, default=None,
        help="stop after this many frames (default: until interrupted)",
    )
    top.add_argument(
        "--out", metavar="FILE",
        help="write the byte-stable logical telemetry snapshot of the "
             "last frame to FILE",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run another subcommand with metrics collection, then dump "
             "the registry",
    )
    metrics.add_argument(
        "--format", choices=("text", "json", "prom"), default="text",
        help="exposition format for the dump (default text; 'prom' is "
             "the strict Prometheus text exposition)",
    )
    metrics.add_argument(
        "--out", metavar="FILE",
        help="write the dump to FILE instead of stdout",
    )
    metrics.add_argument(
        "wrapped", nargs=argparse.REMAINDER, metavar="COMMAND ...",
        help="the subcommand (and its arguments) to run under collection",
    )
    return parser


def _load_values(path: str, column: int) -> np.ndarray:
    if path.endswith(".npy"):
        values = np.load(path)
    else:
        delimiter = "," if path.endswith(".csv") else None
        values = np.loadtxt(path, delimiter=delimiter, ndmin=2)
        if values.ndim == 2:
            if not 0 <= column < values.shape[1]:
                raise ReproError(
                    f"column {column} out of range for {values.shape[1]}-column file"
                )
            values = values[:, column]
    values = np.asarray(values).ravel()
    if values.size == 0:
        raise ReproError(f"no values found in {path}")
    return values


def _print_statistics(stats, show_buckets: int) -> None:
    print(stats.summary())
    print(f"converged: {stats.converged}")
    print(f"histogram: k={stats.histogram.k}, "
          f"range [{stats.histogram.min_value:g}, {stats.histogram.max_value:g}]")
    if show_buckets:
        for i, bucket in enumerate(stats.histogram.buckets()[:show_buckets]):
            print(
                f"  bucket {i:>3}: ({bucket.lo:g}, {bucket.hi:g}] "
                f"count={bucket.count}"
            )


def _cmd_analyze(args) -> int:
    values = _load_values(args.path, args.column)
    table = Table("cli", {"value": values})
    manager = StatisticsManager()
    stats = manager.analyze(
        table,
        "value",
        k=args.k,
        f=args.f,
        gamma=args.gamma,
        method=args.method,
        layout=args.layout,
        rng=ensure_rng(args.seed),
    )
    _print_statistics(stats, args.show_buckets)
    if args.save:
        from .durability import atomic_write_text
        from .engine.serialization import statistics_to_json

        atomic_write_text(args.save, statistics_to_json(stats))
        print(f"statistics written to {args.save}")
    return 0


def _cmd_estimate(args) -> int:
    from .engine.serialization import statistics_from_json

    with open(args.stats) as handle:
        stats = statistics_from_json(handle.read())
    print(stats.summary())
    answered = False
    if args.range is not None:
        lo, hi = args.range
        print(
            f"rows with {lo:g} <= value <= {hi:g}: "
            f"{stats.estimate_range(lo, hi):,.0f}"
        )
        answered = True
    if args.equals is not None:
        print(
            f"rows with value = {args.equals:g}: "
            f"{stats.estimate_equality(args.equals):,.1f}"
        )
        answered = True
    if args.distinct:
        print(f"distinct values: ~{stats.distinct_estimate:,.0f}")
        answered = True
    if not answered:
        print("(no query given: pass --range, --equals and/or --distinct)")
    return 0


def _cmd_plan(args) -> int:
    known = [name for name in ("k", "f", "r") if getattr(args, name) is not None]
    if len(known) != 2:
        print(
            "plan needs exactly two of --k / --f / --r "
            f"(got {len(known)}: {known})",
            file=sys.stderr,
        )
        return 2
    if args.r is None:
        r = bounds.corollary1_sample_size(args.n, args.k, args.f, args.gamma)
        print(f"required sample size r = {r:,} ({r / args.n:.2%} of rows)")
    elif args.f is None:
        f = bounds.corollary1_error_fraction(args.n, args.k, args.r, args.gamma)
        print(f"guaranteed max error fraction f = {f:.4f} ({f:.1%})")
    else:
        k = bounds.corollary1_max_buckets(args.n, args.r, args.f, args.gamma)
        print(f"maximum supported buckets k = {k}")
    return 0


def _cmd_demo(args) -> int:
    dataset = make_dataset(args.dataset, args.n, rng=args.seed)
    print(dataset.describe())
    table = Table("demo", {"value": dataset.values})
    manager = StatisticsManager()
    stats = manager.analyze(
        table,
        "value",
        k=args.k,
        f=args.f,
        layout=args.layout,
        rng=args.seed + 1,
    )
    _print_statistics(stats, show_buckets=0)
    print(
        f"true distinct: {dataset.num_distinct:,} "
        f"(estimated {stats.distinct_estimate:,.0f})"
    )
    return 0


@contextmanager
def _maybe_tracing(trace_path: str | None, command: str):
    """Record a span trace of the wrapped block when *trace_path* is given.

    The root span is ``cli.command`` so every library span recorded during
    the run hangs off one common ancestor; the trace file is written after
    the block exits (even on error, so partial traces of failed runs are
    still inspectable).
    """
    if not trace_path:
        yield
        return
    from .obs import trace as obs_trace

    recorder = obs_trace.TraceRecorder()
    try:
        with obs_trace.tracing(recorder):
            with obs_trace.span("cli.command", command=command):
                yield
    finally:
        recorder.write(trace_path)
        print(f"trace written to {trace_path}", file=sys.stderr)


def _checkpoint_from(args):
    """Build the :class:`RunCheckpoint` requested by --checkpoint/--resume.

    Returns ``None`` when no checkpointing was requested; ``--resume``
    without ``--checkpoint`` is a usage error surfaced by the caller.
    """
    if args.checkpoint is None:
        return None
    from .durability import RunCheckpoint

    return RunCheckpoint(args.checkpoint, resume=args.resume)


def _reject_bare_resume(args) -> bool:
    """True (after printing the error) when --resume lacks --checkpoint."""
    if args.resume and args.checkpoint is None:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return True
    return False


def _figure_scale(args):
    """Resolve the experiment scale, applying any CLI overrides."""
    import dataclasses

    from .experiments.config import get_scale

    scale = get_scale(args.scale)
    overrides = {}
    if args.n is not None:
        overrides["n"] = args.n
        overrides["n_sweep"] = tuple(
            max(args.n // 2 * (i + 1), 1) for i in range(4)
        )
    if args.k is not None:
        overrides["k"] = args.k
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.rates is not None:
        overrides["rates"] = args.rates
    return dataclasses.replace(scale, **overrides) if overrides else scale


def _cmd_figure(args) -> int:
    if args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(
            f"error: --chunk-size must be >= 1, got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    if _reject_bare_resume(args):
        return 2

    with _maybe_tracing(args.trace, "figure"):
        return _figure_run(args)


def _figure_run(args) -> int:
    from .experiments import figures
    from .experiments.reporting import format_series

    scale = _figure_scale(args)
    kwargs = dict(
        scale=scale,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
        checkpoint=_checkpoint_from(args),
    )
    name = args.name
    if name == "3_4":
        result = figures.figures_3_and_4(**kwargs)
        text = format_series("Figure 3 (sampling rate vs n)", [result["rate"]])
        text += "\n" + format_series(
            "Figure 4 (blocks sampled vs n)", [result["blocks"]]
        )
    elif name in ("5", "6", "7"):
        driver = {
            "5": figures.figure5, "6": figures.figure6, "7": figures.figure7
        }[name]
        result = driver(**kwargs)
        series = result["series"]
        if not isinstance(series, list):
            series = [series]
        text = format_series(f"Figure {name}", series)
    elif name == "8":
        result = figures.figure8(**kwargs)
        text = format_series(
            "Figure 8 (blocks sampled vs record size)", [result["blocks"]]
        )
        text += "\n" + format_series(
            "Figure 8 (row sampling rate vs record size)", [result["rate"]]
        )
    else:
        dataset = "zipf2" if name in ("9", "11") else "unif_dup"
        driver = figures.figure9_10 if name in ("9", "10") else figures.figure11_12
        result = driver(dataset, **kwargs)
        keys = (
            ("real", "sample", "estimate")
            if name in ("9", "10")
            else ("err_sample", "err_estimate")
        )
        text = format_series(
            f"Figure {name} ({dataset})", [result[k] for k in keys]
        )

    print(text)
    if args.out:
        from .durability import atomic_write_text

        atomic_write_text(args.out, text + "\n")
        print(f"series written to {args.out}", file=sys.stderr)
    return 0


def _cmd_chaos(args) -> int:
    if args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    for rate in args.fault_rates:
        if not 0.0 <= rate < 1.0:
            print(
                f"error: fault rates must be in [0, 1), got {rate}",
                file=sys.stderr,
            )
            return 2
    if _reject_bare_resume(args):
        return 2

    with _maybe_tracing(args.trace, "chaos"):
        return _chaos_run(args)


def _chaos_run(args) -> int:
    from .experiments.chaos import chaos_sweep, format_chaos_report

    result = chaos_sweep(
        fault_rates=args.fault_rates,
        n=args.n,
        k=args.k,
        f=args.f,
        corrupt_fraction=args.corrupt,
        blocking_factor=args.blocking_factor,
        dataset=args.dataset,
        trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
        max_attempts=args.max_attempts,
        checkpoint=_checkpoint_from(args),
    )
    text = format_chaos_report(result)
    print(text)
    if args.out:
        from .durability import atomic_write_text

        atomic_write_text(args.out, text + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    if args.repeats < 1:
        print(
            f"error: --repeats must be >= 1, got {args.repeats}",
            file=sys.stderr,
        )
        return 2
    if args.warmup < 0:
        print(
            f"error: --warmup must be >= 0, got {args.warmup}",
            file=sys.stderr,
        )
        return 2
    if args.wall_tolerance is not None and args.wall_tolerance <= 0:
        print(
            f"error: --wall-tolerance must be positive, "
            f"got {args.wall_tolerance}",
            file=sys.stderr,
        )
        return 2
    if _reject_bare_resume(args):
        return 2

    from .obs import bench

    if args.list:
        for name in bench.scenario_names():
            scenario = bench.SCENARIOS[name]
            print(f"{name:<22} {scenario.help}")
            print(f"{'':<22} paper: {scenario.paper}")
        return 0

    from .core import kernels

    with _maybe_tracing(args.trace, "bench"):
        if args.kernels is None:
            return _bench_run(args, bench)
        with kernels.use_kernels(args.kernels):
            return _bench_run(args, bench)


def _bench_run(args, bench) -> int:
    import json

    report = bench.run_bench(
        scenarios=args.scenarios,
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        warmup=args.warmup,
        profile_dir=args.profile,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        progress=lambda name: print(f"bench: {name} ...", file=sys.stderr),
    )
    print(bench.format_report(report))

    out = args.out or bench.default_report_name()
    bench.write_report(report, out)
    print(f"bench report written to {out}", file=sys.stderr)
    if args.profile:
        print(
            f"profiles written to {args.profile}/<scenario>.pstats",
            file=sys.stderr,
        )
    if args.update_baseline:
        baseline_path = "benchmarks/baseline.json"
        bench.write_report(report, baseline_path)
        print(f"baseline updated at {baseline_path}", file=sys.stderr)

    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        failures, notes = bench.compare_reports(
            report, baseline, wall_tolerance=args.wall_tolerance
        )
        for note in notes:
            print(f"note: {note}", file=sys.stderr)
        if failures:
            print(
                f"bench comparison FAILED against {args.compare}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  regression: {failure}", file=sys.stderr)
            return 3
        print(f"bench comparison passed against {args.compare}", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from . import lint as lint_mod

    if args.list_rules:
        for rule_id in lint_mod.rule_ids():
            rule = lint_mod.RULES[rule_id]
            print(f"{rule_id:<8} [{rule.severity}] {rule.summary}")
        return 0

    paths = None
    if args.changed_only:
        from .lint.engine import changed_files

        paths = changed_files(args.root)
        if not paths:
            print("lint: no lintable files changed vs main", file=sys.stderr)
    if args.graph:
        from .durability import atomic_write_text
        from .lint.engine import default_root
        from .lint.flowrules import get_project

        root = pathlib.Path(args.root) if args.root else default_root()
        project = get_project(root)
        atomic_write_text(args.graph, project.graph.to_dot())
        print(
            f"call graph written to {args.graph} "
            f"({project.work_measure['modules']} modules, "
            f"{project.work_measure['call_edges']} edges)",
            file=sys.stderr,
        )

    report = lint_mod.run_lint(
        root=args.root, rules=args.rules, paths=paths, flow=args.flow
    )
    if args.write_baseline:
        lint_mod.write_baseline(report, args.write_baseline)
        print(
            f"lint baseline written to {args.write_baseline} "
            f"({len(report.findings)} finding(s))",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        baseline = lint_mod.load_baseline(args.baseline)
        report = lint_mod.apply_baseline(report, baseline)
    rendered = (
        lint_mod.render_json(report)
        if args.format == "json"
        else lint_mod.render_text(report) + "\n"
    )
    if args.out:
        from .durability import atomic_write_text

        atomic_write_text(args.out, rendered)
        print(f"lint report written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    return 1 if report.errors else 0


def _parse_table_specs(specs, seed: int):
    """Materialise ``NAME=DATASET:N`` specs into Table objects.

    Each table gets one ``value`` column drawn from the named synthetic
    dataset with an rng derived from (seed, table index) — so the served
    data is a pure function of the CLI arguments.
    """
    from .engine import Table as _Table

    tables = {}
    for index, spec in enumerate(specs or ["orders=zipf2:20000"]):
        try:
            name, rest = spec.split("=", 1)
            dataset, n_text = rest.split(":", 1)
            n = int(n_text)
        except ValueError:
            raise ReproError(
                f"bad --table spec {spec!r}; expected NAME=DATASET:N"
            ) from None
        if dataset not in DATASET_NAMES:
            raise ReproError(
                f"unknown dataset {dataset!r}; pick one of "
                f"{', '.join(DATASET_NAMES)}"
            )
        data = make_dataset(dataset, n, rng=np.random.default_rng([seed, index]))
        tables[name] = _Table(name, {"value": data.values})
    return tables


def _serve_loadgen_report(args, summary) -> int:
    """Print/write a loadgen summary: logical JSON + wall latencies."""
    import json as _json

    logical_text = (
        _json.dumps(summary["logical"], indent=2, sort_keys=True) + "\n"
    )
    wall = summary["wall"]
    wall_text = _json.dumps(wall, indent=2, sort_keys=True) + "\n"
    if args.out:
        from .durability import atomic_write_text

        atomic_write_text(args.out, logical_text)
        print(f"logical summary written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(logical_text)
    if args.wall_out:
        from .durability import atomic_write_text

        atomic_write_text(args.wall_out, wall_text)
    checksums = summary["logical"]["checksums"]
    print(
        f"loadgen: {summary['logical']['requests']} requests by endpoint, "
        f"{checksums['answers']} answers "
        f"(rows_fsum={checksums['rows_fsum']:.6g}), "
        f"errors={summary['logical']['errors']}",
        file=sys.stderr,
    )
    print(
        f"latency: p50={wall['p50_s'] * 1e3:.3f} ms "
        f"p99={wall['p99_s'] * 1e3:.3f} ms "
        f"max={wall['max_s'] * 1e3:.3f} ms "
        f"over {wall['requests_timed']} timed requests",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args) -> int:
    from .serve import (
        AdmissionController,
        LoadGenerator,
        LoadProfile,
        StatsServer,
        serve_forever,
    )

    if args.connect and args.loadgen:
        print(
            "error: pass --loadgen (in-process) or --connect HOST:PORT, "
            "not both",
            file=sys.stderr,
        )
        return 2
    with _maybe_tracing(args.trace, "serve"):
        if args.connect:
            try:
                host, port_text = args.connect.rsplit(":", 1)
                port = int(port_text)
            except ValueError:
                print(
                    f"error: bad --connect {args.connect!r}; expected "
                    "HOST:PORT",
                    file=sys.stderr,
                )
                return 2
            profile = LoadProfile(
                requests=args.requests, clients=args.clients,
                seed=args.loadgen_seed, churn_rows=args.churn_rows,
                analyze_params=(("k", args.k),),
            )
            summary = LoadGenerator(
                address=(host, port), profile=profile
            ).run()
            return _serve_loadgen_report(args, summary)

        server = StatsServer(
            _parse_table_specs(args.tables, args.seed),
            seed=args.seed,
            cache_capacity=args.cache_capacity,
            admission=AdmissionController(
                max_inflight=args.max_inflight, max_queue=args.max_queue
            ),
            store=args.store,
            build_params={"k": args.k},
            telemetry=args.telemetry,
        )
        if args.loadgen:
            profile = LoadProfile(
                requests=args.requests, clients=args.clients,
                seed=args.loadgen_seed, churn_rows=args.churn_rows,
                analyze_params=(("k", args.k),),
            )
            summary = LoadGenerator(server=server, profile=profile).run()
            server.checkpoint()
            return _serve_loadgen_report(args, summary)
        serve_forever(
            server, host=args.host, port=args.port,
            ready_path=args.ready_file,
        )
        return 0


def _cmd_top(args) -> int:
    from .serve.monitor import run_top

    try:
        host, port_text = args.connect.rsplit(":", 1)
        port = int(port_text)
    except ValueError:
        print(
            f"error: bad --connect {args.connect!r}; expected HOST:PORT",
            file=sys.stderr,
        )
        return 2
    if args.frames is not None and args.frames < 1:
        print(
            f"error: --frames must be >= 1, got {args.frames}",
            file=sys.stderr,
        )
        return 2
    code = run_top(
        host, port,
        once=args.once, interval=args.interval, frames=args.frames,
        out=args.out,
    )
    if args.out:
        print(f"logical snapshot written to {args.out}", file=sys.stderr)
    return code


def _cmd_metrics(args) -> int:
    from .obs import metrics as obs_metrics

    wrapped = list(args.wrapped)
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        print(
            "error: metrics needs a subcommand to wrap, e.g. "
            "`python -m repro metrics demo zipf2`",
            file=sys.stderr,
        )
        return 2
    if wrapped[0] == "metrics":
        print("error: metrics cannot wrap itself", file=sys.stderr)
        return 2
    with obs_metrics.collecting() as registry:
        code = main(wrapped)
    renderers = {
        "text": obs_metrics.render_text,
        "json": obs_metrics.render_json,
        "prom": obs_metrics.render_prom,
    }
    rendered = renderers[args.format](registry)
    if args.out:
        from .durability import atomic_write_text

        atomic_write_text(args.out, rendered)
        print(f"metrics written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "estimate": _cmd_estimate,
        "plan": _cmd_plan,
        "demo": _cmd_demo,
        "figure": _cmd_figure,
        "chaos": _cmd_chaos,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "metrics": _cmd_metrics,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
