"""Piatetsky-Shapiro & Connell style single-query selectivity sampling.

The earliest sampling-for-statistics work the paper cites [27] answers a
*given* query from a small sample: the fraction of sampled tuples matching
the predicate estimates its selectivity, with a Hoeffding-style sample-size
bound for a target additive error.  The contrast the paper draws
(Section 1.1) is that a histogram must be accurate for *all* queries at
once, which is why its bounds (Theorems 4-5) look different.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import EmptyDataError, ParameterError
from ..workloads.queries import RangeQuery

__all__ = ["psc_sample_size", "psc_selectivity_estimate", "psc_count_estimate"]


def psc_sample_size(epsilon: float, gamma: float) -> int:
    """Sample size for additive selectivity error *epsilon* w.p. ``1-gamma``.

    Hoeffding bound for a Bernoulli mean: ``r >= ln(2/gamma) / (2*epsilon^2)``.
    Note this is per *single* query; no bound on simultaneous accuracy over a
    query class is implied.
    """
    if not 0 < epsilon < 1:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < gamma < 1:
        raise ParameterError(f"gamma must be in (0, 1), got {gamma}")
    return math.ceil(math.log(2.0 / gamma) / (2.0 * epsilon * epsilon))


def psc_selectivity_estimate(sample: np.ndarray, query: RangeQuery) -> float:
    """Fraction of *sample* matching *query* — the PSC selectivity estimate."""
    sample = np.asarray(sample)
    if sample.size == 0:
        raise EmptyDataError("cannot estimate selectivity from an empty sample")
    return float(query.selects(sample).mean())


def psc_count_estimate(sample: np.ndarray, query: RangeQuery, n: int) -> float:
    """PSC selectivity scaled to an output-size estimate for a table of *n*."""
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    return psc_selectivity_estimate(sample, query) * n
