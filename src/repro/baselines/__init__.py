"""Baselines the paper compares against: GMP incremental maintenance [8]
and Piatetsky-Shapiro/Connell single-query sampling [27]."""

from .gmp import GMPHistogram
from .psc import psc_count_estimate, psc_sample_size, psc_selectivity_estimate

__all__ = [
    "GMPHistogram",
    "psc_count_estimate",
    "psc_sample_size",
    "psc_selectivity_estimate",
]
