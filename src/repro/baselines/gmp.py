"""Gibbons-Matias-Poosala (GMP) style incremental histogram maintenance.

The paper's closest prior work [8] keeps an approximate equi-depth histogram
continuously up to date as tuples arrive, using

- a **backing sample** maintained by reservoir sampling, and
- a **split-and-recompute rule**: bucket counts are updated in place on each
  insert, and when some bucket grows past a threshold ``(1 + tolerance) *
  n/k``, the separators are recomputed from the backing sample.

Its analytic guarantee (Theorem 6 of the paper) is evaluated by
:func:`repro.core.bounds.gmp_theorem6`; this module supplies the *runnable*
baseline so benchmarks can compare maintenance cost and achieved error
against one-shot CVB construction.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike, ensure_rng
from ..core.error_metrics import max_error_fraction
from ..core.histogram import EquiHeightHistogram, equi_height_separators
from ..exceptions import EmptyDataError, ParameterError

__all__ = ["GMPHistogram"]


class GMPHistogram:
    """An incrementally maintained approximate equi-depth histogram.

    Parameters
    ----------
    k:
        Number of buckets.
    backing_sample_size:
        Reservoir capacity.  GMP's Theorem 6 sizes this as ``c*k*ln^2 k``;
        callers are free to pick anything.
    tolerance:
        A bucket may grow to ``(1 + tolerance) * n/k`` before a recompute is
        triggered.  GMP's recommended setting corresponds to small constant
        tolerances; larger values trade accuracy for fewer recomputes.
    """

    def __init__(
        self,
        k: int,
        backing_sample_size: int,
        tolerance: float = 1.0,
        rng: RngLike = None,
    ):
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if backing_sample_size < k:
            raise ParameterError(
                f"backing sample ({backing_sample_size}) must hold at least "
                f"k={k} values"
            )
        if tolerance <= 0:
            raise ParameterError(f"tolerance must be positive, got {tolerance}")
        self.k = int(k)
        self.capacity = int(backing_sample_size)
        self.tolerance = float(tolerance)
        self._rng = ensure_rng(rng)
        self._reservoir: list = []
        self._seen = 0
        self._separators: np.ndarray | None = None
        self._counts = np.zeros(k, dtype=np.int64)
        self._last_recompute_total = 0
        self.recompute_count = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        """Tuples currently summarised."""
        return int(self._counts.sum())

    @property
    def backing_sample(self) -> np.ndarray:
        """Current reservoir contents (unordered)."""
        return np.asarray(self._reservoir)

    def insert(self, value) -> None:
        """Observe one inserted tuple."""
        self._reservoir_add(value)
        if self._separators is None:
            # Bootstrap: count everything in bucket 0 until first recompute.
            self._counts[0] += 1
            if self.total >= self.k:
                self._recompute()
            return
        bucket = int(np.searchsorted(self._separators, value, side="left"))
        self._counts[bucket] += 1
        threshold = (1.0 + self.tolerance) * (self.total / self.k)
        overflow = self._counts[bucket] > max(threshold, 1.0)
        # Even without an overflow, stale separators must be refreshed as the
        # relation grows (GMP recomputes whenever the backing sample has
        # turned over substantially); doubling of the live total is the
        # standard trigger.
        grown = self.total >= 2 * self._last_recompute_total
        if overflow or grown:
            self._recompute()

    def insert_many(self, values: np.ndarray) -> None:
        """Observe a batch of inserts (order preserved)."""
        for value in np.asarray(values):
            self.insert(value)

    def _reservoir_add(self, value) -> None:
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._reservoir[j] = value

    def _recompute(self) -> None:
        """Rebuild separators from the backing sample, redistribute counts.

        The true per-bucket counts of live data are unknown after a
        separator change; GMP approximates them as equal shares of the
        running total, which is exactly what an equi-depth histogram
        asserts.
        """
        if not self._reservoir:
            raise EmptyDataError("cannot recompute from an empty backing sample")
        sample = np.sort(np.asarray(self._reservoir))
        self._separators = equi_height_separators(sample, self.k).astype(np.float64)
        total = self.total
        base = total // self.k
        counts = np.full(self.k, base, dtype=np.int64)
        counts[: total - base * self.k] += 1
        self._counts = counts
        self._last_recompute_total = total
        self.recompute_count += 1

    # ------------------------------------------------------------------
    # Reading the histogram
    # ------------------------------------------------------------------

    def snapshot(self) -> EquiHeightHistogram:
        """The current histogram as an :class:`EquiHeightHistogram`."""
        if self._separators is None or not self._reservoir:
            raise EmptyDataError("histogram not initialised yet (too few inserts)")
        sample = np.asarray(self._reservoir)
        return EquiHeightHistogram(
            self._separators,
            self._counts,
            float(min(sample.min(), self._separators.min())),
            float(max(sample.max(), self._separators.max())),
        )

    def achieved_error(self, sorted_values: np.ndarray) -> float:
        """Fractional max error of the current separators against the full
        (sorted) live data — for benchmark comparison with CVB."""
        if self._separators is None:
            raise EmptyDataError("histogram not initialised yet")
        histogram = EquiHeightHistogram.from_separators(
            self._separators, sorted_values
        )
        return max_error_fraction(histogram.counts)
