"""Project call graph over the lint symbol table.

Edges connect *function units* — module-level functions and class
methods, identified by fully-qualified dotted names like
``repro.serve.server.StatsServer.checkpoint``.  Resolution is
deliberately conservative (a static analyzer that guesses produces
false positives, and this repo's lint gate runs at zero findings):

- ``name(...)`` resolves through the module's import table and its own
  top-level defs; constructor calls land on ``Class.__init__``.
- ``self.method(...)`` resolves within the enclosing class, then its
  same-project bases.
- ``self.attr.method(...)`` resolves through the class's inferred
  attribute types (collected from ``self.attr = ClassName(...)``
  assignments and annotated constructor parameters).
- ``var.method(...)`` resolves through local type inference: annotated
  parameters, ``x = ClassName(...)`` assignments (including walrus
  targets) and ``with ClassName(...) as x`` bindings.

Anything unresolved becomes an *external* edge carrying the resolved
dotted name (``time.sleep``, ``numpy.random.default_rng``) when one
exists, or no edge at all — the flow rules treat absence as unknown,
never as proof.  :func:`CallGraph.to_dot` renders the project subgraph
deterministically for ``repro lint --graph``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .symbols import ClassInfo, ModuleSummary, SymbolTable

__all__ = ["CallEdge", "FunctionUnit", "CallGraph", "build_call_graph"]


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_heads(node: ast.AST | None) -> list[str]:
    """Candidate class names in an annotation (unwraps ``X | None`` etc.)."""
    if node is None:
        return []
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_heads(node.left) + _annotation_heads(node.right)
    if isinstance(node, ast.Subscript):  # Optional[X] / list[X] — look in
        return _annotation_heads(node.slice)
    if isinstance(node, ast.Tuple):
        heads: list[str] = []
        for elt in node.elts:
            heads.extend(_annotation_heads(elt))
        return heads
    name = _dotted(node)
    return [name] if name and name != "None" else []


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: *caller* invokes *callee* at *lineno*."""

    caller: str
    callee: str
    lineno: int
    external: bool
    node: ast.Call = field(compare=False, hash=False, repr=False)


@dataclass
class FunctionUnit:
    """One analyzable function: a module-level def or a class method."""

    qualname: str
    module: ModuleSummary
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: ClassInfo | None = None

    @property
    def is_async(self) -> bool:
        """True for ``async def`` units (the CON1xx rule scope)."""
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def params(self) -> list[str]:
        """Positional parameter names, ``self``/``cls`` included."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]


@dataclass
class CallGraph:
    """Resolved call edges plus the function-unit and type indexes."""

    table: SymbolTable
    units: dict[str, FunctionUnit] = field(default_factory=dict)
    edges: list[CallEdge] = field(default_factory=list)
    #: class qualname -> attr name -> candidate class qualnames.
    attr_types: dict[str, dict[str, set[str]]] = field(default_factory=dict)
    by_caller: dict[str, list[CallEdge]] = field(default_factory=dict)
    by_callee: dict[str, list[CallEdge]] = field(default_factory=dict)

    def callers_of(self, qualname: str) -> list[CallEdge]:
        """Edges whose callee is *qualname*."""
        return self.by_callee.get(qualname, [])

    def calls_from(self, qualname: str) -> list[CallEdge]:
        """Edges whose caller is *qualname*."""
        return self.by_caller.get(qualname, [])

    def to_dot(self, include_external: bool = False) -> str:
        """Deterministic Graphviz rendering of the call graph."""
        lines = ["digraph repro_calls {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=9];']
        project = sorted(self.units)
        for name in project:
            style = ', style=filled, fillcolor="#e8f0fe"' if (
                self.units[name].is_async
            ) else ""
            lines.append(f'  "{name}" [label="{name}"{style}];')
        seen: set[tuple[str, str, bool]] = set()
        for edge in sorted(
            self.edges, key=lambda e: (e.caller, e.callee, e.external)
        ):
            if edge.external and not include_external:
                continue
            key = (edge.caller, edge.callee, edge.external)
            if key in seen:
                continue
            seen.add(key)
            attrs = ' [style=dashed, color=gray]' if edge.external else ""
            lines.append(f'  "{edge.caller}" -> "{edge.callee}"{attrs};')
        lines.append("}")
        return "\n".join(lines) + "\n"


class _UnitResolver:
    """Resolves the call sites of one function unit."""

    def __init__(self, graph: CallGraph, unit: FunctionUnit):
        self.graph = graph
        self.unit = unit
        self.module = unit.module
        self.local_types = self._infer_local_types()

    def _project_class(self, dotted: str) -> str | None:
        """Class qualname when *dotted* (local form) names a project class."""
        resolved = self.module.resolve_local(dotted)
        hit = self.graph.table.resolve_symbol(resolved)
        if hit is None:
            return None
        summary, symbol = hit
        if symbol and symbol in summary.classes:
            return f"{summary.name}.{symbol}"
        return None

    def _infer_local_types(self) -> dict[str, str]:
        """Variable name → project-class qualname, best effort."""
        env: dict[str, str] = {}
        args = self.unit.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            for head in _annotation_heads(arg.annotation):
                qual = self._project_class(head)
                if qual is not None:
                    env[arg.arg] = qual
                    break
        for node in ast.walk(self.unit.node):
            if isinstance(node, ast.Assign):
                qual = self._expr_class(node.value)
                if qual is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = qual
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    qual = None
                    if node.value is not None:
                        qual = self._expr_class(node.value)
                    if qual is None:
                        for head in _annotation_heads(node.annotation):
                            qual = self._project_class(head)
                            if qual is not None:
                                break
                    if qual is not None:
                        env[node.target.id] = qual
            elif isinstance(node, ast.NamedExpr):
                # Walrus targets bind like assignments: (x := Cls(...)).
                if isinstance(node.target, ast.Name):
                    qual = self._expr_class(node.value)
                    if qual is not None:
                        env[node.target.id] = qual
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is None or not isinstance(
                        item.optional_vars, ast.Name
                    ):
                        continue
                    qual = self._expr_class(item.context_expr)
                    if qual is not None:
                        env[item.optional_vars.id] = qual
        return env

    def _expr_class(self, expr: ast.AST) -> str | None:
        """Project class constructed by *expr*, scanning into ternaries."""
        if isinstance(expr, ast.IfExp):
            return (
                self._expr_class(expr.body) or self._expr_class(expr.orelse)
            )
        if isinstance(expr, ast.Call):
            name = _dotted(expr.func)
            if name is not None:
                return self._project_class(name)
        return None

    def _method_edge(
        self, cls_qual: str, method: str, _depth: int = 0
    ) -> str | None:
        """Qualname of *method* on *cls_qual* or a same-project base."""
        if _depth > 6:
            return None
        hit = self.graph.table.resolve_symbol(cls_qual)
        if hit is None:
            return None
        summary, symbol = hit
        info = summary.classes.get(symbol)
        if info is None:
            return None
        if method in info.methods:
            return f"{summary.name}.{symbol}.{method}"
        for base in info.bases:
            base_qual = summary.resolve_local(base)
            found = self._method_edge(base_qual, method, _depth + 1)
            if found is not None:
                return found
        return None

    def resolve_call(self, call: ast.Call) -> tuple[str, bool] | None:
        """(callee qualname, external flag) for one call, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_plain(func.id)
        if not isinstance(func, ast.Attribute):
            return None
        # self.method(...) and self.attr.method(...)
        if self.unit.owner is not None:
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self":
                own = (
                    f"{self.module.name}.{self.unit.owner.name}"
                )
                target = self._method_edge(own, func.attr)
                if target is not None:
                    return (target, False)
                return (f"{own}.{func.attr}", True)
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                own = f"{self.module.name}.{self.unit.owner.name}"
                for cand in sorted(
                    self.graph.attr_types.get(own, {}).get(base.attr, ())
                ):
                    target = self._method_edge(cand, func.attr)
                    if target is not None:
                        return (target, False)
        # var.method(...) through local type inference.
        if isinstance(func.value, ast.Name):
            cls_qual = self.local_types.get(func.value.id)
            if cls_qual is not None:
                target = self._method_edge(cls_qual, func.attr)
                if target is not None:
                    return (target, False)
        # Fully-dotted chains: module attr access or imported names.
        name = _dotted(func)
        if name is None:
            return None
        return self._resolve_plain(name)

    def _resolve_plain(self, dotted: str) -> tuple[str, bool] | None:
        head = dotted.split(".", 1)[0]
        known = (
            head in self.module.imports
            or head in self.module.classes
            or head in self.module.functions
        )
        resolved = self.module.resolve_local(dotted)
        hit = self.graph.table.resolve_symbol(resolved)
        if hit is not None:
            summary, symbol = hit
            if symbol in summary.functions:
                return (f"{summary.name}.{symbol}", False)
            if symbol in summary.classes:
                info = summary.classes[symbol]
                if "__init__" in info.methods:
                    return (f"{summary.name}.{symbol}.__init__", False)
                return (f"{summary.name}.{symbol}", False)
            return None
        if head in self.local_types:
            return None  # a method chain handled above, not a module path
        if known or head == dotted or "." in dotted:
            # Imported externals (time.sleep) and bare builtins (open).
            return (resolved, True)
        return (resolved, True)


def _collect_attr_types(graph: CallGraph) -> None:
    """Populate ``attr_types`` from ``self.attr = ...`` assignments."""
    for unit in graph.units.values():
        if unit.owner is None:
            continue
        resolver = _UnitResolver(graph, unit)
        own = f"{unit.module.name}.{unit.owner.name}"
        slot = graph.attr_types.setdefault(own, {})
        for node in ast.walk(unit.node):
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                cands: set[str] = set()
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Call):
                        name = _dotted(sub.func)
                        if name is not None:
                            qual = resolver._project_class(name)
                            if qual is not None:
                                cands.add(qual)
                if isinstance(value, ast.Name):
                    typed = resolver.local_types.get(value.id)
                    if typed is not None:
                        cands.add(typed)
                if cands:
                    slot.setdefault(target.attr, set()).update(cands)


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Build the project call graph for every unit in *table*."""
    graph = CallGraph(table=table)
    for module in sorted(table.modules.values(), key=lambda m: m.name):
        for fn in module.functions.values():
            qual = f"{module.name}.{fn.name}"
            graph.units[qual] = FunctionUnit(qual, module, fn)
        for info in module.classes.values():
            for meth in info.methods.values():
                qual = f"{module.name}.{info.name}.{meth.name}"
                graph.units[qual] = FunctionUnit(qual, module, meth, info)
    _collect_attr_types(graph)
    for qual in sorted(graph.units):
        unit = graph.units[qual]
        resolver = _UnitResolver(graph, unit)
        for node in ast.walk(unit.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolver.resolve_call(node)
            if resolved is None:
                continue
            callee, external = resolved
            edge = CallEdge(qual, callee, node.lineno, external, node)
            graph.edges.append(edge)
            graph.by_caller.setdefault(qual, []).append(edge)
            graph.by_callee.setdefault(callee, []).append(edge)
    return graph
