"""The lint engine: file discovery, rule registry, suppressions, reports.

Design
------

- **Rules are objects.**  Each rule subclasses :class:`Rule`, declares an
  ``id`` (``DET001`` ...), a ``severity``, one-line ``summary``, the
  ``rationale`` tying it to the invariant it protects (mirrored into
  ``docs/LINTING.md`` by a sync test), and an ``example_fix``.  Python
  rules get a parsed AST per file; Markdown rules get raw text.
- **One parse per file.**  The engine parses each source file once into a
  :class:`LintContext` and hands the same context to every applicable
  rule; the AST node count it accumulates is the deterministic "work done"
  measure reported by the ``lint_full_repo`` bench scenario.
- **Inline suppressions.**  ``# repro: noqa[RULE]`` (comma-separated ids,
  optionally followed by a justification) suppresses findings of those
  rules on that physical line.  Suppressions are tracked: any that match
  no finding become ``NOQA001`` findings themselves, so stale allowlist
  entries surface instead of rotting.
- **Deterministic output.**  Findings sort by ``(path, line, col, rule)``
  and carry no timestamps, so text and JSON reports are golden-file
  comparable (see :mod:`repro.lint.report`).

The project-specific rule set registers itself on import (bottom of this
module); :data:`RULES` is the id-keyed registry the CLI, the docs-sync
test and the bench scenario all read.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..exceptions import ParameterError, ReproError

__all__ = [
    "Finding",
    "LintContext",
    "ObsCatalog",
    "LintReport",
    "Rule",
    "RULES",
    "register",
    "rule_ids",
    "default_root",
    "load_obs_catalog",
    "python_files",
    "markdown_files",
    "changed_files",
    "run_lint",
    "lint_text",
]

#: Severity levels a rule may declare, in increasing order of concern.
SEVERITIES = ("warning", "error")

#: Inline suppression syntax: a comment of the form ``repro: noqa[ID]``
#: (comma-separated ids, optional trailing justification after ``--``).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, anchored to a file position.

    Ordering is ``(path, line, col, rule)`` so reports are deterministic.
    The :meth:`fingerprint` deliberately excludes the line number: baselines
    stay stable when unrelated edits shift code up or down a file.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def fingerprint(self) -> str:
        """Line-insensitive identity used by ``--baseline`` diffing."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form of the finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class ObsCatalog:
    """The declared observability surface, extracted *statically*.

    ``OBS001`` must not import the analyzed project (a linter that executes
    its target is neither fast nor side-effect free), so the metric and
    span names are pulled out of ``src/repro/obs/catalog.py`` by walking
    its AST: every ``MetricSpec("name", ...)`` call contributes a metric
    name and the ``SPANS = {...}`` dict literal contributes span names.
    """

    metric_names: frozenset[str]
    span_names: frozenset[str]

    @property
    def empty(self) -> bool:
        """True when no catalog file was found (OBS001 then stands down)."""
        return not self.metric_names and not self.span_names


def load_obs_catalog(root: pathlib.Path) -> ObsCatalog:
    """Extract the metric/span catalog under *root* without importing it."""
    path = root / "src" / "repro" / "obs" / "catalog.py"
    if not path.is_file():
        return ObsCatalog(frozenset(), frozenset())
    tree = ast.parse(path.read_text(), filename=str(path))
    metrics: set[str] = set()
    spans: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if (
                name == "MetricSpec"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                metrics.add(node.args[0].value)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign):
                targets = (
                    [node.target.id]
                    if isinstance(node.target, ast.Name)
                    else []
                )
            else:
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
            if "SPANS" in targets and isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        spans.add(key.value)
    return ObsCatalog(frozenset(metrics), frozenset(spans))


@dataclass
class LintContext:
    """Everything a rule may inspect about one file (parsed once).

    ``project`` is the whole-program :class:`~repro.lint.flowrules.
    ProjectModel` (symbol table + call graph); it is only populated when
    a selected rule declares ``requires_flow`` — per-module rules never
    pay for it.
    """

    rel_path: str
    source: str
    lines: list[str]
    tree: ast.AST | None
    root: pathlib.Path
    catalog: ObsCatalog
    project: object | None = None


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes
    ----------
    id:
        Stable rule identifier (``DET001`` ...), used in reports, in
        ``--rules`` selection and in ``# repro: noqa[...]`` suppressions.
    severity:
        ``"error"`` (gates CI) or ``"warning"`` (reported, never gates).
    summary / rationale / example_fix:
        One-line description, the invariant the rule protects (with its
        paper/PR hook), and a representative fix — all mirrored into
        ``docs/LINTING.md`` by the docs-sync test.
    targets:
        ``"python"`` rules receive an AST; ``"markdown"`` rules receive
        raw document text.
    paths:
        Optional ``fnmatch`` patterns (on the repo-relative posix path)
        restricting where the rule applies; ``None`` means everywhere.
    engine_managed:
        True for rules the engine emits itself (``NOQA001``); their
        :meth:`check` is never called.
    requires_flow:
        True for whole-program rules (SEED1xx/CON1xx) that need the
        project model; they only run under ``--flow`` or when selected
        explicitly via ``--rules``.
    """

    id: str = ""
    severity: str = "error"
    summary: str = ""
    rationale: str = ""
    example_fix: str = ""
    targets: str = "python"
    paths: tuple[str, ...] | None = None
    engine_managed: bool = False
    requires_flow: bool = False

    def applies_to(self, rel_path: str) -> bool:
        """Does this rule run on the file at *rel_path*?"""
        if self.paths is None:
            return True
        return any(fnmatch.fnmatch(rel_path, pat) for pat in self.paths)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one file; subclasses must override."""
        raise NotImplementedError

    def finding(
        self, ctx: LintContext, line: int, col: int, message: str
    ) -> Finding:
        """Construct a finding carrying this rule's id and severity."""
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


#: The rule registry, keyed by rule id, in registration order.
RULES: dict[str, Rule] = {}


def register(rule_cls):
    """Register a :class:`Rule` subclass (decorator; ids must be unique)."""
    rule = rule_cls() if isinstance(rule_cls, type) else rule_cls
    if not rule.id:
        raise ParameterError(f"rule {rule!r} has no id")
    if rule.id in RULES:
        raise ParameterError(f"duplicate lint rule id {rule.id!r}")
    if rule.severity not in SEVERITIES:
        raise ParameterError(
            f"rule {rule.id}: severity must be one of {SEVERITIES}, "
            f"got {rule.severity!r}"
        )
    RULES[rule.id] = rule
    return rule_cls


def rule_ids() -> list[str]:
    """Registered rule ids, in registration order."""
    return list(RULES)


def default_root() -> pathlib.Path:
    """The repo root, derived from this package's location on disk."""
    return pathlib.Path(__file__).resolve().parents[3]


def python_files(root: pathlib.Path) -> list[pathlib.Path]:
    """Every Python file under ``src/repro``, sorted for determinism."""
    package = root / "src" / "repro"
    if not package.is_dir():
        raise ReproError(
            f"no src/repro package under {root}; pass an explicit root"
        )
    return sorted(package.rglob("*.py"))


#: Top-level Markdown files whose relative links must resolve (DOC002);
#: everything under ``docs/`` is added automatically.
DOC_FILES = ("README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md")


def markdown_files(root: pathlib.Path) -> list[pathlib.Path]:
    """The repo's linted Markdown set: :data:`DOC_FILES` plus ``docs/``."""
    files = [root / name for name in DOC_FILES if (root / name).is_file()]
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``files`` and ``nodes`` (AST nodes for Python files, scanned lines for
    Markdown) are the deterministic work measure the bench harness tracks;
    ``findings`` is sorted by position.  ``flow`` carries the project
    model's work counters (modules, call edges) when the flow analysis
    ran, else None.
    """

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    nodes: int = 0
    rules: list[str] = field(default_factory=list)
    flow: dict | None = None

    @property
    def errors(self) -> list[Finding]:
        """Findings at ``error`` severity (the CI gate counts these)."""
        return [f for f in self.findings if f.severity == "error"]


def _resolve_rules(
    rules: Iterable[str] | None, flow: bool = False
) -> list[Rule]:
    if rules is None:
        return [
            r
            for r in RULES.values()
            if not r.engine_managed and (flow or not r.requires_flow)
        ]
    selected = []
    for rule_id in rules:
        if rule_id not in RULES:
            raise ParameterError(
                f"unknown lint rule {rule_id!r}; choose from {rule_ids()}"
            )
        if not RULES[rule_id].engine_managed:
            selected.append(RULES[rule_id])
    return selected


def _suppressions(source: str) -> dict[int, dict[str, bool]]:
    """Per-line suppression table: ``{line: {rule_id: used_flag}}``.

    Only genuine COMMENT tokens are scanned (via :mod:`tokenize`), so a
    docstring *describing* the suppression syntax never registers one.
    """
    table: dict[int, dict[str, bool]] = {}
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        ids = [part.strip() for part in match.group(1).split(",")]
        lineno = token.start[0]
        table[lineno] = {rule_id: False for rule_id in ids if rule_id}
    return table


def _apply_suppressions(
    ctx: LintContext, findings: list[Finding], active: set[str]
) -> list[Finding]:
    """Filter suppressed findings; emit ``NOQA001`` for unused entries.

    Suppressions for rules outside *active* (the selected rule ids) are
    left alone: a ``--rules DOC001`` run must not report the repo's
    DET002 annotations as stale.
    """
    table = _suppressions(ctx.source)
    kept: list[Finding] = []
    for finding in findings:
        entry = table.get(finding.line)
        if entry is not None and finding.rule in entry:
            entry[finding.rule] = True
        else:
            kept.append(finding)
    for lineno in sorted(table):
        for rule_id, used in table[lineno].items():
            if used or rule_id not in active:
                continue
            kept.append(
                Finding(
                    path=ctx.rel_path,
                    line=lineno,
                    col=0,
                    rule="NOQA001",
                    message=(
                        f"suppression for {rule_id} matched no finding; "
                        "remove the stale `# repro: noqa` annotation"
                    ),
                    severity=RULES["NOQA001"].severity,
                )
            )
    return kept


def _lint_context(
    rel_path: str,
    source: str,
    root: pathlib.Path,
    catalog: ObsCatalog,
    parse: bool,
) -> LintContext:
    tree = None
    if parse:
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            raise ReproError(
                f"{rel_path}: cannot lint, file does not parse: {exc}"
            ) from exc
    return LintContext(
        rel_path=rel_path,
        source=source,
        lines=source.splitlines(),
        tree=tree,
        root=root,
        catalog=catalog,
    )


def _check_file(
    ctx: LintContext, rules: list[Rule], target: str
) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        if rule.targets != target or not rule.applies_to(ctx.rel_path):
            continue
        findings.extend(rule.check(ctx))
    if target == "python":
        active = {r.id for r in rules if r.applies_to(ctx.rel_path)}
        findings = _apply_suppressions(ctx, findings, active)
    return findings


def run_lint(
    root: pathlib.Path | str | None = None,
    rules: Iterable[str] | None = None,
    paths: Iterable[pathlib.Path | str] | None = None,
    flow: bool = False,
) -> LintReport:
    """Lint the repo at *root* (default: this checkout) and report.

    *rules* selects a subset of rule ids (default: every registered rule);
    *paths* overrides file discovery with an explicit list (each entry is
    reported relative to *root*).  Python rules run on ``src/repro``
    modules, Markdown rules on the :func:`markdown_files` doc set.
    ``flow=True`` additionally enables the whole-program SEED1xx/CON1xx
    rules (the project model is built once and shared across files).
    """
    root = pathlib.Path(root) if root is not None else default_root()
    selected = _resolve_rules(rules, flow=flow)
    catalog = load_obs_catalog(root)
    project = None
    if any(r.requires_flow for r in selected):
        from .flowrules import get_project

        project = get_project(root)

    if paths is None:
        py_files = (
            python_files(root)
            if any(r.targets == "python" for r in selected)
            else []
        )
        md_files = (
            markdown_files(root)
            if any(r.targets == "markdown" for r in selected)
            else []
        )
    else:
        resolved = [pathlib.Path(p) for p in paths]
        py_files = [p for p in resolved if p.suffix == ".py"]
        md_files = [p for p in resolved if p.suffix == ".md"]

    report = LintReport(rules=[r.id for r in selected])
    if project is not None:
        report.flow = project.work_measure
    for path in py_files:
        source = path.read_text()
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        ctx = _lint_context(rel, source, root, catalog, parse=True)
        ctx.project = project
        report.files += 1
        report.nodes += sum(1 for _ in ast.walk(ctx.tree))
        report.findings.extend(_check_file(ctx, selected, "python"))
    for path in md_files:
        source = path.read_text()
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        ctx = _lint_context(rel, source, root, catalog, parse=False)
        report.files += 1
        report.nodes += len(ctx.lines)
        report.findings.extend(_check_file(ctx, selected, "markdown"))
    report.findings.sort()
    return report


def lint_text(
    source: str,
    rel_path: str = "src/repro/module.py",
    root: pathlib.Path | str | None = None,
    rules: Iterable[str] | None = None,
    catalog: ObsCatalog | None = None,
    flow: bool = False,
) -> LintReport:
    """Lint one Python source string as if it lived at *rel_path*.

    The unit-test entry point: rules whose ``paths`` scope depends on the
    location (``DET004``, ``FLT001``) can be exercised by choosing
    *rel_path* accordingly.  *catalog* overrides the OBS001 catalog
    (default: extracted from *root*).  When a flow rule is selected (or
    ``flow=True``), a single-module project model is built from just
    this source, so SEED/CON fixtures lint without a repo on disk.
    """
    root = pathlib.Path(root) if root is not None else default_root()
    if catalog is None:
        catalog = load_obs_catalog(root)
    selected = _resolve_rules(rules, flow=flow)
    ctx = _lint_context(rel_path, source, root, catalog, parse=True)
    if any(r.requires_flow for r in selected):
        from .flowrules import get_project

        ctx.project = get_project(root, sources={rel_path: source})
    report = LintReport(rules=[r.id for r in selected], files=1)
    report.nodes = sum(1 for _ in ast.walk(ctx.tree))
    report.findings.extend(_check_file(ctx, selected, "python"))
    report.findings.sort()
    return report


def changed_files(root: pathlib.Path | str | None = None) -> list[pathlib.Path]:
    """Lintable files changed versus the merge-base with ``main``.

    The fast pre-push loop behind ``repro lint --changed-only``: asks git
    for the merge-base of ``HEAD`` with ``origin/main`` (falling back to
    a local ``main``), diffs the worktree against it, adds untracked
    files, and keeps only paths the lint engine would discover anyway
    (``src/repro`` Python plus the Markdown doc set).
    """
    import subprocess

    root = pathlib.Path(root) if root is not None else default_root()

    def _git(*args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            ["git", *args], cwd=root, capture_output=True, text=True
        )

    base = None
    for ref in ("origin/main", "main"):
        proc = _git("merge-base", "HEAD", ref)
        if proc.returncode == 0:
            base = proc.stdout.strip()
            break
    if base is None:
        raise ReproError(
            f"cannot find a merge-base with main under {root}; "
            "--changed-only needs a git checkout with a main branch"
        )
    names: set[str] = set()
    diff = _git("diff", "--name-only", base)
    if diff.returncode != 0:
        raise ReproError(f"git diff failed under {root}: {diff.stderr.strip()}")
    names.update(line for line in diff.stdout.splitlines() if line)
    untracked = _git("ls-files", "--others", "--exclude-standard")
    if untracked.returncode == 0:
        names.update(line for line in untracked.stdout.splitlines() if line)

    lintable = {p.resolve() for p in python_files(root)}
    lintable.update(p.resolve() for p in markdown_files(root))
    changed = []
    for name in sorted(names):
        path = (root / name).resolve()
        if path.exists() and path in lintable:
            changed.append(root / name)
    return changed


# Register the project rule set (imports at the bottom so the modules can
# import this one for the Rule base class without a cycle).
from . import docrules as _docrules  # noqa: E402,F401
from . import rules as _rules  # noqa: E402,F401
from . import flowrules as _flowrules  # noqa: E402,F401
