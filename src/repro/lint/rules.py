"""Project-specific AST rules: determinism, observability, fault routing.

Each rule protects an invariant a prior PR established dynamically:

- ``DET001``/``DET002`` — seed-exactness: the serial/parallel equivalence
  property (PR 1) and the exact bench gate (PR 4) only hold if no code
  path consults process-global RNG state or the wall clock.
- ``DET003``/``DET004`` — bit-identical reports: set iteration order and
  naive float summation are the two classic ways "equal" runs diverge.
- ``OBS001`` — the metrics/trace catalog (PR 3) is strict at runtime;
  this makes an undeclared name a lint error before any test runs.
- ``EXC001`` — exceptions crossing ``TrialPool`` process boundaries
  (PR 1) must survive ``pickle`` round-trips, which means every
  constructor argument has to land in ``Exception.args``.
- ``EXC002``/``EXC003`` — crash safety (PR 7): modules that persist
  durable artifacts must route writes through the atomic helper, and no
  code path may swallow a broad exception silently — a silent handler
  would eat the injected :class:`~repro.exceptions.SimulatedCrashError`
  the chaos matrix relies on.
- ``FLT001`` — sampling/CVB paths must route page/record reads through
  the resilient wrappers (PR 2) so fault injection stays exhaustive.

All rules resolve imported names through :class:`ImportTable`, so
``np.random.seed`` and ``numpy.random.seed`` (or ``from time import
time``) are caught identically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Finding, LintContext, Rule, register

__all__ = [
    "ImportTable",
    "dotted_name",
    "GlobalRngRule",
    "WallClockRule",
    "SetIterationRule",
    "FloatSumRule",
    "ObsCatalogRule",
    "PicklableExceptionRule",
    "AtomicWriteRule",
    "SilentExceptRule",
    "ResilientReadRule",
    "UnusedSuppressionRule",
]


class ImportTable:
    """Alias → fully-qualified module path map for one parsed file.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from datetime
    import datetime as dt`` maps ``dt`` to ``datetime.datetime``.  Used
    to resolve attribute chains like ``np.random.seed`` to their true
    dotted names before matching against rule deny/allow lists.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    full = alias.name if alias.asname else local
                    self.aliases[local] = full
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports never hit stdlib/numpy
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str:
        """Expand the leading segment of *name* through the alias map."""
        head, _, rest = name.partition(".")
        base = self.aliases.get(head, head)
        return f"{base}.{rest}" if rest else base


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolved_calls(ctx: LintContext) -> Iterator[tuple[ast.Call, str]]:
    """Yield every call in the file with its import-resolved dotted name."""
    table = ImportTable(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                yield node, table.resolve(name)


@register
class GlobalRngRule(Rule):
    """DET001 — no process-global RNG state."""

    id = "DET001"
    severity = "error"
    summary = "global-state RNG call (random.* / np.random.* module level)"
    rationale = (
        "Theorems 4-7 are validated by seed-exact trials; module-level "
        "RNG state is shared across the process, so any call through it "
        "breaks serial/parallel equivalence (PR 1) and the exact bench "
        "gate (PR 4). Use repro._rng.ensure_rng / numpy Generator objects."
    )
    example_fix = (
        "`np.random.seed(0); np.random.random()` -> "
        "`rng = ensure_rng(0); rng.random()`"
    )

    #: numpy.random attributes that construct explicit generators rather
    #: than touching the module-global state.
    _NP_ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    })
    #: stdlib random attributes that construct explicit instances.
    _PY_ALLOWED = frozenset({"Random"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag calls through ``random.*`` or ``numpy.random.*`` state."""
        for node, name in _resolved_calls(ctx):
            if name.startswith("numpy.random."):
                attr = name.removeprefix("numpy.random.")
                if attr.split(".", 1)[0] in self._NP_ALLOWED:
                    continue
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"call to global-state numpy RNG `{name}`; construct "
                    "an explicit Generator (repro._rng.ensure_rng)",
                )
            elif name.startswith("random."):
                attr = name.removeprefix("random.")
                if attr.split(".", 1)[0] in self._PY_ALLOWED:
                    continue
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"call to global-state stdlib RNG `{name}`; use an "
                    "explicit seeded generator (repro._rng.ensure_rng)",
                )


@register
class WallClockRule(Rule):
    """DET002 — no wall-clock or entropy reads in logic paths."""

    id = "DET002"
    severity = "error"
    summary = "wall-clock / entropy call outside the obs-timing allowlist"
    rationale = (
        "Experiment outputs must be a pure function of (seed, params); "
        "time and entropy reads make reruns diverge. Timing belongs to "
        "the observability layer only, where each site carries a "
        "`# repro: noqa[DET002]` justification that it never feeds "
        "logical results."
    )
    example_fix = (
        "`elapsed = time.time() - t0` in a logic path -> delete, or move "
        "the measurement into repro.obs and suppress with justification"
    )

    _DENY = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid4",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag denylisted time/entropy calls and any ``secrets.*`` use."""
        for node, name in _resolved_calls(ctx):
            if name in self._DENY or name.startswith("secrets."):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"nondeterministic call `{name}`; experiment logic "
                    "must be a pure function of (seed, params)",
                )


#: Consumers that impose/observe order on their iterable argument.
_ORDER_SENSITIVE = frozenset({
    "list", "tuple", "enumerate", "reversed", "iter",
})
#: Consumers that erase iteration order (safe over sets).
_ORDER_SAFE = frozenset({
    "sorted", "len", "min", "max", "any", "all", "sum", "set",
    "frozenset", "math.fsum",
})


@register
class SetIterationRule(Rule):
    """DET003 — no unordered iteration feeding ordered output."""

    id = "DET003"
    severity = "error"
    summary = "iteration over a set/frozenset feeding ordered output"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomization; feeding it into a list, loop or join makes "
        "reports and golden files flap. Wrap the set in `sorted(...)` "
        "before anything order-sensitive consumes it."
    )
    example_fix = "`for name in {..}:` -> `for name in sorted({..}):`"

    @staticmethod
    def _is_unordered(node: ast.AST, table: ImportTable) -> bool:
        if isinstance(node, ast.NamedExpr):
            # A walrus target is just a view of its value:
            # `for x in (s := {...})` iterates the set.
            node = node.value
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and table.resolve(name) in (
                "set", "frozenset"
            ):
                return True
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag set-valued iterables reaching order-sensitive consumers."""
        table = ImportTable(ctx.tree)
        blessed: set[int] = set()
        # First pass: bless set expressions consumed by order-erasing
        # callables (sorted(...), len(...), ...), including through a
        # generator expression argument.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or table.resolve(name) not in _ORDER_SAFE:
                continue
            for arg in node.args:
                blessed.add(id(arg))
                if isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
                    for gen in arg.generators:
                        blessed.add(id(gen.iter))
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_unordered(node.iter, table):
                    yield self.finding(
                        ctx, node.iter.lineno, node.iter.col_offset,
                        "for-loop over a set/frozenset: iteration order "
                        "is not deterministic; use sorted(...)",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if id(gen.iter) in blessed:
                        continue
                    if self._is_unordered(gen.iter, table):
                        yield self.finding(
                            ctx, gen.iter.lineno, gen.iter.col_offset,
                            "comprehension over a set/frozenset feeds "
                            "ordered output; use sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                consumer = (
                    table.resolve(name) if name is not None else None
                )
                is_join = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                )
                if consumer not in _ORDER_SENSITIVE and not is_join:
                    continue
                for arg in node.args:
                    if id(arg) in blessed:
                        continue
                    if self._is_unordered(arg, table):
                        label = "join" if is_join else consumer
                        yield self.finding(
                            ctx, arg.lineno, arg.col_offset,
                            f"set/frozenset passed to order-sensitive "
                            f"`{label}(...)`; use sorted(...)",
                        )


@register
class FloatSumRule(Rule):
    """DET004 — compensated summation in metrics/error paths."""

    id = "DET004"
    severity = "error"
    summary = "bare sum() in a metrics/error accumulation path"
    rationale = (
        "Naive float summation accumulates rounding error that depends "
        "on operand order, so merged-vs-serial metric totals (PR 1/PR 3) "
        "can differ in the last ulp and break exact golden comparisons. "
        "math.fsum is exactly rounded and order-independent. Integer "
        "sums may stay, with a `# repro: noqa[DET004]` justification."
    )
    example_fix = "`sum(durations)` -> `math.fsum(durations)`"
    paths = (
        "src/repro/obs/*.py",
        "src/repro/experiments/parallel.py",
        "src/repro/core/error_metrics.py",
        "src/repro/core/kernels.py",
        "src/repro/distinct/metrics.py",
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag builtin ``sum(...)`` calls in the scoped paths."""
        for node, name in _resolved_calls(ctx):
            if name == "sum":
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    "bare sum() in a metrics/error path; use math.fsum "
                    "for float accumulation (suppress with justification "
                    "if provably integral)",
                )


@register
class ObsCatalogRule(Rule):
    """OBS001 — every metric/span name literal is declared in the catalog."""

    id = "OBS001"
    severity = "error"
    summary = "metric/span name literal not declared in repro.obs.catalog"
    rationale = (
        "The observability layer (PR 3) validates names at runtime and "
        "its docs are generated from the catalog; an undeclared literal "
        "would only explode when that code path executes. This check "
        "makes the catalog contract hold statically, repo-wide."
    )
    example_fix = (
        "`inc(\"repro_new_total\")` -> add a MetricSpec for "
        "`repro_new_total` to repro.obs.catalog first"
    )

    _METRIC_METHODS = frozenset({"inc", "set_gauge", "observe"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Cross-check name literals against the statically-read catalog."""
        if ctx.catalog.empty:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            attr = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            if attr in self._METRIC_METHODS:
                if first.value not in ctx.catalog.metric_names:
                    yield self.finding(
                        ctx, first.lineno, first.col_offset,
                        f"metric name `{first.value}` is not declared in "
                        "repro.obs.catalog",
                    )
            elif attr == "span":
                if first.value not in ctx.catalog.span_names:
                    yield self.finding(
                        ctx, first.lineno, first.col_offset,
                        f"span name `{first.value}` is not declared in "
                        "repro.obs.catalog SPANS",
                    )


@register
class PicklableExceptionRule(Rule):
    """EXC001 — exception classes must survive pickle round-trips."""

    id = "EXC001"
    severity = "error"
    summary = "exception class whose constructor args do not reach .args"
    rationale = (
        "TrialPool (PR 1) ships worker failures across process "
        "boundaries; pickle reconstructs an exception by calling "
        "`type(exc)(*exc.args)`, so an __init__ that drops a parameter "
        "from `super().__init__(...)` either raises TypeError on load "
        "or silently loses payload (e.g. a partial result)."
    )
    example_fix = (
        "`super().__init__(message)` with a second `result` param -> "
        "`super().__init__(message, result)` (plus __str__ if needed)"
    )

    _BASE_SUFFIXES = ("Error", "Exception")

    @staticmethod
    def _params(init: ast.FunctionDef) -> list[str]:
        args = init.args
        names = [a.arg for a in args.posonlyargs + args.args][1:]  # -self
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    @classmethod
    def _forwarded(cls, init: ast.FunctionDef) -> set[str] | None:
        """Names forwarded positionally to super().__init__, or None."""
        for node in ast.walk(init):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__init__"
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                continue
            names: set[str] = set()
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    names.add(arg.id)
                elif isinstance(arg, ast.Starred) and isinstance(
                    arg.value, ast.Name
                ):
                    names.add(arg.value.id)
            return names
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag exception subclasses that would not pickle faithfully."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [
                dotted_name(base) or "" for base in node.bases
            ]
            if not any(
                name.split(".")[-1].endswith(self._BASE_SUFFIXES)
                for name in base_names
            ):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "__reduce__" in methods or "__init__" not in methods:
                continue
            init = methods["__init__"]
            params = self._params(init)
            if not params:
                continue
            forwarded = self._forwarded(init)
            if forwarded is None:
                missing = params
            else:
                missing = [p for p in params if p not in forwarded]
            if missing:
                yield self.finding(
                    ctx, init.lineno, init.col_offset,
                    f"exception `{node.name}` drops constructor "
                    f"argument(s) {missing} from super().__init__; "
                    "pickle reconstructs via type(exc)(*exc.args)",
                )


@register
class AtomicWriteRule(Rule):
    """EXC002 — durable artifacts go through the atomic write helper."""

    id = "EXC002"
    severity = "error"
    summary = "non-atomic write in a module that persists durable artifacts"
    rationale = (
        "A crash between open(path, 'w') and close leaves a truncated "
        "artifact behind the same name as the good version, so recovery "
        "(PR 7) cannot tell damage from data. Modules that persist "
        "durable artifacts must write through repro.durability.atomic, "
        "whose tmp + fsync + rename protocol makes the previous complete "
        "version the worst case. Journal appends (mode 'a'/'ab') are the "
        "one sanctioned in-place protocol and stay exempt."
    )
    example_fix = (
        "`open(path, 'w').write(text)` -> `atomic_write_text(path, text)`"
    )
    paths = (
        "src/repro/cli.py",
        "src/repro/obs/bench.py",
        "src/repro/obs/trace.py",
        "src/repro/engine/serialization.py",
        "src/repro/durability/*.py",
    )

    #: ``open`` modes that truncate or create the target in place.
    _WRITE_MODES = frozenset(
        {"w", "wt", "tw", "w+", "+w", "wb", "bw", "wb+", "w+b", "+wb",
         "x", "xt", "xb", "x+", "xb+"}
    )
    _WRITE_METHODS = frozenset({"write_text", "write_bytes"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag write-mode ``open()`` and ``Path.write_*`` calls."""
        table = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._WRITE_METHODS
            ):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f".{func.attr}() writes the artifact in place; use "
                    "repro.durability.atomic_write_text/_bytes",
                )
                continue
            name = dotted_name(func)
            if name is None or table.resolve(name) != "open":
                continue
            mode = self._mode_of(node)
            if mode in self._WRITE_MODES:
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"open(..., {mode!r}) writes a durable artifact in "
                    "place; route it through repro.durability.atomic "
                    "(journal appends use mode 'a'/'ab' and are exempt)",
                )

    @staticmethod
    def _mode_of(node: ast.Call) -> str | None:
        """The literal mode string of an ``open`` call, if present."""
        mode: ast.AST | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None


@register
class SilentExceptRule(Rule):
    """EXC003 — no broad except handler may swallow errors silently."""

    id = "EXC003"
    severity = "error"
    summary = "broad except handler that silently swallows the exception"
    rationale = (
        "The chaos harness (PR 7) proves recovery by raising "
        "SimulatedCrashError at injected crash points; a bare `except:` "
        "or `except Exception: pass` eats that signal (and every real "
        "bug) without a trace, turning a crash-safety proof into a "
        "vacuous pass. Broad handlers must do something observable — "
        "re-raise, return a sentinel, or record the failure."
    )
    example_fix = (
        "`except Exception: pass` -> `except OSError: return None` "
        "(catch the specific error, and act on it)"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag broad handlers whose body is only ``pass``/``...``."""
        table = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type, table):
                continue
            if all(self._is_silent(stmt) for stmt in node.body):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    "broad except with an empty body swallows every "
                    "error, including injected crash signals; narrow "
                    "the type or handle the failure observably",
                )

    def _is_broad(self, node: ast.AST | None, table: ImportTable) -> bool:
        if node is None:  # a bare `except:` catches BaseException
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(el, table) for el in node.elts)
        name = dotted_name(node)
        return name is not None and table.resolve(name) in self._BROAD

    @staticmethod
    def _is_silent(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )


@register
class ResilientReadRule(Rule):
    """FLT001 — sampling/CVB paths use resilient read wrappers."""

    id = "FLT001"
    severity = "error"
    summary = "raw HeapFile read in a sampling/CVB path"
    rationale = (
        "The fault-injection layer (PR 2) proves degraded-but-bounded "
        "builds by routing every page/record read through the retrying "
        "wrappers in repro.storage.faults; a raw read in a sampling or "
        "CVB path silently escapes that coverage. Fast paths taken only "
        "when no fault policy is configured carry a justification."
    )
    example_fix = (
        "`heapfile.read_page(pid)` -> "
        "`read_page_resilient(heapfile, pid, retry=...)`"
    )
    paths = (
        "src/repro/sampling/*.py",
        "src/repro/core/adaptive.py",
    )

    _RAW_READS = frozenset({"read_page", "read_pages", "read_record"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag direct ``.read_page/.read_pages/.read_record`` calls."""
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._RAW_READS
            ):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"raw HeapFile.{node.func.attr} call in a "
                    "sampling/CVB path; use the resilient wrappers in "
                    "repro.storage.faults",
                )


@register
class UnusedSuppressionRule(Rule):
    """NOQA001 — emitted by the engine for stale suppressions."""

    id = "NOQA001"
    severity = "error"
    summary = "`# repro: noqa[...]` suppression that matched no finding"
    rationale = (
        "Inline suppressions are scoped exemptions from the determinism "
        "contract; one that no longer matches a finding is a stale "
        "allowlist entry hiding future violations on that line."
    )
    example_fix = "delete the stale `# repro: noqa[RULE]` comment"
    engine_managed = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Never called; the engine emits NOQA001 findings itself."""
        return iter(())
