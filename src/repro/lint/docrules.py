"""Documentation rules folded in from the old standalone tools.

``tools/check_docstrings.py`` and ``tools/check_links.py`` predate the
lint engine; their logic now lives here as DOC001/DOC002 so one driver
(`python -m repro lint`) covers code and docs alike, and the old scripts
are thin shims that delegate to these rules (their CLI exit-status
contract — number of violations, 0 = clean — is preserved).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import Finding, LintContext, Rule, register

__all__ = ["DocstringRule", "LinkRule"]


@register
class DocstringRule(Rule):
    """DOC001 — public API surface carries docstrings."""

    id = "DOC001"
    severity = "error"
    summary = "public module/class/function without a docstring"
    rationale = (
        "The repo's docs-by-construction stance (PR 3) requires every "
        "public name to explain itself; an undocumented helper is where "
        "the paper-to-code mapping goes dark. Exemptions are inline "
        "`# repro: noqa[DOC001]` on the def line, never a central list."
    )
    example_fix = (
        "add a one-line docstring, e.g. "
        "`\"\"\"Append one (x, y) point.\"\"\"`"
    )

    @staticmethod
    def _public_defs(body, prefix: str):
        """Yield (qualname, node) for public defs/classes in *body*,
        one level into classes but not into function bodies."""
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield f"{prefix}{node.name}", node
            elif isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield f"{prefix}{node.name}", node
                    yield from DocstringRule._public_defs(
                        node.body, f"{prefix}{node.name}."
                    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Require docstrings on the module and its public defs."""
        if ast.get_docstring(ctx.tree) is None:
            yield self.finding(
                ctx, 1, 0, "module has no docstring"
            )
        for qualname, node in self._public_defs(ctx.tree.body, ""):
            if ast.get_docstring(node) is None:
                kind = (
                    "class" if isinstance(node, ast.ClassDef)
                    else "function"
                )
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"public {kind} `{qualname}` has no docstring",
                )


_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
_CODE_SPAN = re.compile(r"`[^`]*`")


def _blank_code_spans(line: str) -> str:
    """Replace inline code spans with spaces (column-preserving).

    Example links quoted in backticks (as docs/LINTING.md does for the
    DOC002 example fix) are illustrations, not navigation.
    """
    return _CODE_SPAN.sub(lambda m: " " * len(m.group(0)), line)


@register
class LinkRule(Rule):
    """DOC002 — relative Markdown links resolve."""

    id = "DOC002"
    severity = "error"
    summary = "relative Markdown link whose target does not exist"
    rationale = (
        "README/docs are the paper-to-code map; a broken relative link "
        "is a silent hole in it. External links and in-page anchors are "
        "skipped — this is a structural check, not a crawler."
    )
    example_fix = (
        "`[bench gate](docs/BENCH.md)` -> fix the path or create the file"
    )
    targets = "markdown"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag relative link targets that resolve to nothing on disk."""
        base = (ctx.root / ctx.rel_path).parent
        in_fence = False
        for lineno, line in enumerate(ctx.lines, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(_blank_code_spans(line)):
                target = match.group(1)
                if target.startswith(_SKIP_PREFIXES):
                    continue
                resolved = base / target.split("#", 1)[0]
                if not resolved.exists():
                    yield self.finding(
                        ctx, lineno, match.start(),
                        f"broken relative link -> {target}",
                    )
