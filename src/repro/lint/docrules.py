"""Documentation rules folded in from the old standalone tools.

``tools/check_docstrings.py`` and ``tools/check_links.py`` predate the
lint engine; their logic now lives here as DOC001/DOC002 so one driver
(`python -m repro lint`) covers code and docs alike, and the old scripts
are thin shims that delegate to these rules (their CLI exit-status
contract — number of violations, 0 = clean — is preserved).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import Finding, LintContext, Rule, register

__all__ = ["DocstringRule", "LinkRule", "ApiReferenceRule"]


@register
class DocstringRule(Rule):
    """DOC001 — public API surface carries docstrings."""

    id = "DOC001"
    severity = "error"
    summary = "public module/class/function without a docstring"
    rationale = (
        "The repo's docs-by-construction stance (PR 3) requires every "
        "public name to explain itself; an undocumented helper is where "
        "the paper-to-code mapping goes dark. Exemptions are inline "
        "`# repro: noqa[DOC001]` on the def line, never a central list."
    )
    example_fix = (
        "add a one-line docstring, e.g. "
        "`\"\"\"Append one (x, y) point.\"\"\"`"
    )

    @staticmethod
    def _public_defs(body, prefix: str):
        """Yield (qualname, node) for public defs/classes in *body*,
        one level into classes but not into function bodies.  Defs
        nested in conditional statements (``if``/``try``/``match``/
        ``with`` blocks, e.g. version-gated fallbacks) are still part
        of the public surface and are descended into."""
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield f"{prefix}{node.name}", node
            elif isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield f"{prefix}{node.name}", node
                    yield from DocstringRule._public_defs(
                        node.body, f"{prefix}{node.name}."
                    )
            elif isinstance(node, ast.If):
                yield from DocstringRule._public_defs(node.body, prefix)
                yield from DocstringRule._public_defs(node.orelse, prefix)
            elif isinstance(node, ast.Try):
                for block in (node.body, node.orelse, node.finalbody):
                    yield from DocstringRule._public_defs(block, prefix)
                for handler in node.handlers:
                    yield from DocstringRule._public_defs(
                        handler.body, prefix
                    )
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                yield from DocstringRule._public_defs(node.body, prefix)
            elif isinstance(node, ast.Match):
                for case in node.cases:
                    yield from DocstringRule._public_defs(case.body, prefix)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Require docstrings on the module and its public defs."""
        if ast.get_docstring(ctx.tree) is None:
            yield self.finding(
                ctx, 1, 0, "module has no docstring"
            )
        for qualname, node in self._public_defs(ctx.tree.body, ""):
            if ast.get_docstring(node) is None:
                kind = (
                    "class" if isinstance(node, ast.ClassDef)
                    else "function"
                )
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"public {kind} `{qualname}` has no docstring",
                )


_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
_CODE_SPAN = re.compile(r"`[^`]*`")


def _blank_code_spans(line: str) -> str:
    """Replace inline code spans with spaces (column-preserving).

    Example links quoted in backticks (as docs/LINTING.md does for the
    DOC002 example fix) are illustrations, not navigation.
    """
    return _CODE_SPAN.sub(lambda m: " " * len(m.group(0)), line)


@register
class LinkRule(Rule):
    """DOC002 — relative Markdown links resolve."""

    id = "DOC002"
    severity = "error"
    summary = "relative Markdown link whose target does not exist"
    rationale = (
        "README/docs are the paper-to-code map; a broken relative link "
        "is a silent hole in it. External links and in-page anchors are "
        "skipped — this is a structural check, not a crawler."
    )
    example_fix = (
        "`[bench gate](docs/BENCH.md)` -> fix the path or create the file"
    )
    targets = "markdown"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag relative link targets that resolve to nothing on disk."""
        base = (ctx.root / ctx.rel_path).parent
        in_fence = False
        for lineno, line in enumerate(ctx.lines, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(_blank_code_spans(line)):
                target = match.group(1)
                if target.startswith(_SKIP_PREFIXES):
                    continue
                resolved = base / target.split("#", 1)[0]
                if not resolved.exists():
                    yield self.finding(
                        ctx, lineno, match.start(),
                        f"broken relative link -> {target}",
                    )


_API_HEADING = re.compile(r"^### `(repro[\w.]*)`$")


def _first_paragraph(doc: str | None) -> str:
    """The generator's docstring rendering (kept in lockstep with
    ``tools/gen_api_reference.py``)."""
    if not doc:
        return "*(undocumented)*"
    paragraph = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


@register
class ApiReferenceRule(Rule):
    """DOC003 — docs/API.md module sections match the live docstrings."""

    id = "DOC003"
    severity = "error"
    summary = "stale docs/API.md section vs the live module docstrings"
    rationale = (
        "docs/API.md is generated from docstrings by "
        "tools/gen_api_reference.py; once it drifts — a module added "
        "without a section, or a docstring rewritten without "
        "regenerating — the reference silently documents a codebase "
        "that no longer exists. This folds the drift check into the "
        "zero-findings gate like every other doc rule."
    )
    example_fix = (
        "run `python tools/gen_api_reference.py` (after adding new "
        "modules to its SECTIONS table)"
    )
    targets = "markdown"
    paths = ("docs/API.md",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Cross-check API.md headings against the parsed module tree."""
        package = ctx.root / "src" / "repro"
        if not package.is_dir():
            return
        from .symbols import build_symbol_table

        table = build_symbol_table(ctx.root)
        headings: dict[str, tuple[int, str]] = {}
        for lineno, line in enumerate(ctx.lines, start=1):
            match = _API_HEADING.match(line)
            if match is None:
                continue
            paragraph = ""
            for follow in ctx.lines[lineno:]:
                if follow.strip():
                    paragraph = follow.strip()
                    break
            headings[match.group(1)] = (lineno, paragraph)
        for name, (lineno, paragraph) in sorted(headings.items()):
            summary = table.modules.get(name)
            if summary is None:
                yield self.finding(
                    ctx, lineno, 0,
                    f"docs/API.md documents `{name}` but no such module "
                    "exists; regenerate with tools/gen_api_reference.py",
                )
                continue
            expected = _first_paragraph(summary.docstring)
            if paragraph != expected:
                yield self.finding(
                    ctx, lineno, 0,
                    f"docs/API.md section for `{name}` is stale (its "
                    "docstring changed); regenerate with "
                    "tools/gen_api_reference.py",
                )
        for name, summary in sorted(table.modules.items()):
            if summary.is_package or name.endswith("__main__"):
                continue
            if any(part.startswith("_") for part in name.split(".")):
                continue
            if name not in headings:
                yield self.finding(
                    ctx, 1, 0,
                    f"module `{name}` has no docs/API.md section; add it "
                    "to tools/gen_api_reference.py SECTIONS and "
                    "regenerate",
                )
