"""Project-wide symbol table for whole-program lint analysis.

The per-module rules (:mod:`repro.lint.rules`) see one file at a time;
the flow rules (:mod:`repro.lint.flowrules`) need to know what a dotted
name *means* across module boundaries — which module a ``from .cache
import StatsCache`` lands in, which class a constructor call builds,
which function a call resolves to.  This module builds that map:

- :class:`ModuleSummary` — one parsed module: its dotted name, import
  alias table (relative imports resolved against the package layout),
  top-level functions and classes, and a content hash.
- :class:`SymbolTable` — every module under ``src/repro`` keyed by
  dotted name, with qualified-name resolution that follows package
  re-exports (``repro.serve.StatsServer`` → ``repro.serve.server``).

Summaries are cached process-wide by ``(rel_path, file_hash)`` so
repeated builds — the bench scenario runs the full analysis several
times — only re-parse modules whose content actually changed.  The
:attr:`SymbolTable.analyzed` list records which modules were parsed
fresh on this build; the cache-invalidation test asserts that editing
one module re-analyzes only that module.
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
from dataclasses import dataclass, field

from ..exceptions import ParameterError

__all__ = [
    "ClassInfo",
    "ModuleSummary",
    "SymbolTable",
    "build_symbol_table",
    "clear_summary_cache",
    "module_name_for",
]

#: Process-wide summary cache: rel_path -> (file_hash, summary).
_SUMMARY_CACHE: dict[str, tuple[str, "ModuleSummary"]] = {}


def clear_summary_cache() -> None:
    """Drop every cached module summary (test isolation hook)."""
    _SUMMARY_CACHE.clear()


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative ``src/...`` posix path.

    ``src/repro/serve/server.py`` → ``repro.serve.server``;
    ``src/repro/serve/__init__.py`` → ``repro.serve``.
    """
    parts = pathlib.PurePosixPath(rel_path).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        raise ParameterError(f"cannot derive a module name from {rel_path!r}")
    return ".".join(parts)


@dataclass
class ClassInfo:
    """One class definition: bases as written, plus its methods."""

    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )


@dataclass
class ModuleSummary:
    """Everything the analyzer keeps about one parsed module."""

    name: str
    rel_path: str
    is_package: bool
    file_hash: str
    tree: ast.Module
    #: local alias -> fully-qualified dotted target (module or module.attr).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    docstring: str | None = None

    def resolve_local(self, dotted: str) -> str:
        """Expand the leading segment of *dotted* through this module.

        Imported aliases win; otherwise a module-level class or function
        name qualifies to ``<module>.<name>``; anything else (builtins,
        locals the caller should have resolved already) passes through
        unchanged.
        """
        head, _, rest = dotted.partition(".")
        if head in self.imports:
            base = self.imports[head]
        elif head in self.classes or head in self.functions:
            base = f"{self.name}.{head}"
        else:
            base = head
        return f"{base}.{rest}" if rest else base


def _hash_source(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def _resolve_relative(name: str, is_package: bool, level: int,
                      module: str | None) -> str | None:
    """Absolute dotted target of a ``from ...x import`` statement."""
    parts = name.split(".")
    anchor = parts if is_package else parts[:-1]
    if level > 1:
        if level - 1 > len(anchor):
            return None
        anchor = anchor[: len(anchor) - (level - 1)]
    target = ".".join(anchor)
    if module:
        target = f"{target}.{module}" if target else module
    return target or None


def _summarize(rel_path: str, source: str, file_hash: str) -> ModuleSummary:
    """Parse one module and extract its import/def surface."""
    is_package = rel_path.endswith("__init__.py")
    name = module_name_for(rel_path)
    tree = ast.parse(source, filename=rel_path)
    summary = ModuleSummary(
        name=name,
        rel_path=rel_path,
        is_package=is_package,
        file_hash=file_hash,
        tree=tree,
        docstring=ast.get_docstring(tree),
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    summary.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    summary.imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(
                    name, is_package, node.level, node.module
                )
            else:
                base = node.module
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = f"{base}.{alias.name}"
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            info = ClassInfo(name=node.name, node=node)
            for base in node.bases:
                parts: list[str] = []
                cur: ast.AST = base
                while isinstance(cur, ast.Attribute):
                    parts.append(cur.attr)
                    cur = cur.value
                if isinstance(cur, ast.Name):
                    parts.append(cur.id)
                    info.bases.append(".".join(reversed(parts)))
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = item
            summary.classes[node.name] = info
    return summary


@dataclass
class SymbolTable:
    """Every module under the analyzed tree, keyed by dotted name."""

    root: pathlib.Path
    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    #: modules parsed fresh (cache miss) on this build, in path order.
    analyzed: list[str] = field(default_factory=list)

    def add(self, rel_path: str, source: str) -> ModuleSummary:
        """Summarize one module, reusing the hash-keyed cache."""
        file_hash = _hash_source(source)
        cached = _SUMMARY_CACHE.get(rel_path)
        if cached is not None and cached[0] == file_hash:
            summary = cached[1]
        else:
            summary = _summarize(rel_path, source, file_hash)
            _SUMMARY_CACHE[rel_path] = (file_hash, summary)
            self.analyzed.append(summary.name)
        self.modules[summary.name] = summary
        return summary

    def module_of(self, rel_path: str) -> ModuleSummary | None:
        """The summary whose file is *rel_path*, if analyzed."""
        for summary in self.modules.values():
            if summary.rel_path == rel_path:
                return summary
        return None

    def signature(self) -> tuple[tuple[str, str], ...]:
        """Stable (rel_path, hash) fingerprint of the analyzed tree."""
        return tuple(
            sorted(
                (s.rel_path, s.file_hash) for s in self.modules.values()
            )
        )

    def resolve_symbol(
        self, dotted: str, _depth: int = 0
    ) -> tuple[ModuleSummary, str] | None:
        """Locate the defining module of a fully-qualified *dotted* name.

        Returns ``(module_summary, symbol)`` where *symbol* is a
        top-level class or function name in that module, following
        package re-exports (``from .server import StatsServer`` in an
        ``__init__``) up to a small bounded depth.  ``None`` for names
        outside the analyzed tree.
        """
        if _depth > 8:
            return None
        # Longest module prefix wins: repro.serve.server.StatsServer
        # splits at the deepest dotted name that is a known module.
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            summary = self.modules.get(module_name)
            if summary is None:
                continue
            remainder = parts[cut:]
            if not remainder:
                return (summary, "")
            symbol = remainder[0]
            if symbol in summary.classes or symbol in summary.functions:
                return (summary, symbol)
            if symbol in summary.imports:
                target = summary.imports[symbol]
                tail = ".".join(remainder[1:])
                full = f"{target}.{tail}" if tail else target
                return self.resolve_symbol(full, _depth + 1)
            return None
        return None


def build_symbol_table(
    root: pathlib.Path,
    sources: dict[str, str] | None = None,
) -> SymbolTable:
    """Build the symbol table for the tree at *root*.

    *sources* (rel_path → source text) overrides disk discovery — the
    unit-test entry point for synthetic mini-projects.  On-disk builds
    scan ``src/repro`` like the lint engine does.
    """
    table = SymbolTable(root=root)
    if sources is not None:
        for rel_path in sorted(sources):
            table.add(rel_path, sources[rel_path])
        return table
    package = root / "src" / "repro"
    if not package.is_dir():
        raise ParameterError(
            f"no src/repro package under {root}; pass explicit sources"
        )
    for path in sorted(package.rglob("*.py")):
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        table.add(rel, path.read_text())
    return table
