"""Whole-program flow rules: seed provenance and asyncio races.

These rules run over the :class:`ProjectModel` — symbol table plus call
graph (see :mod:`repro.lint.symbols` / :mod:`repro.lint.callgraph`) —
rather than one file at a time, and are therefore opt-in: ``repro lint
--flow`` (or explicit ``--rules`` selection) enables them.

SEED1xx — seed-provenance dataflow
----------------------------------

The serial≡parallel contract (PR 1) requires that every value crossing
a ``TrialPool`` boundary is a picklable **seed** derived through
``spawn_seeds``.  A small taint lattice tracks RNG provenance through
each function: ``SPAWNED`` (a ``spawn_seeds`` result and anything
derived from it by indexing, comprehension or tuple packing),
``GENERATOR`` (``ensure_rng`` / ``default_rng`` / ``spawn_rngs``
results), ``RAWDRAW`` (direct generator draws like ``rng.integers``
not routed through ``spawn_seeds``) and unknown.  Unknown stays silent
— the gate runs at zero findings, so the analysis only speaks when it
can prove provenance.  When the seeds argument is a function
parameter, the call graph supplies the callers and their argument
taint is checked one level up (findings land at the caller).

CON1xx — asyncio shared-state model
-----------------------------------

``async def`` bodies are split into *await segments*: segment *k* is
the code after the *k*-th ``await`` expression.  The scheduler may
interleave other tasks at every await, so an attribute of a shared
object (``self`` or a parameter) written in one segment and read in
another without consistently holding a lock is a race (CON101).
Blocking synchronous calls — ``time.sleep``, sync file I/O, and any
project function whose call-graph closure reaches one — stall the
event loop (CON102).  Lock ``acquire()`` without a matching
``release()`` in the same function leaks the lock on error paths
(CON103).
"""

from __future__ import annotations

import ast
import bisect
import pathlib
from dataclasses import dataclass, field
from typing import Iterator

from .engine import Finding, LintContext, Rule, register
from .callgraph import (
    CallGraph,
    FunctionUnit,
    _UnitResolver,
    _dotted,
    build_call_graph,
)
from .symbols import ModuleSummary, SymbolTable, build_symbol_table

__all__ = [
    "ProjectModel",
    "get_project",
    "clear_project_cache",
    "AmbientRngRule",
    "NonSpawnedSeedsRule",
    "GeneratorBoundaryRule",
    "AwaitRaceRule",
    "BlockingAsyncRule",
    "LockBalanceRule",
]

# ----------------------------------------------------------------------
# taint lattice
# ----------------------------------------------------------------------

SPAWNED = "spawned"
GENERATOR = "generator"
RAWDRAW = "rawdraw"

#: generator methods whose results are raw draws, not spawned seeds.
_DRAW_METHODS = frozenset({
    "integers", "random", "choice", "normal", "uniform",
    "standard_normal", "permutation", "bytes", "exponential", "poisson",
})

#: taint priority when joining (worst provenance wins).
_JOIN_ORDER = {RAWDRAW: 3, GENERATOR: 2, SPAWNED: 1, None: 0}


@dataclass(frozen=True)
class _ParamTaint:
    """Marker: the value is the enclosing function's parameter *name*."""

    name: str


def _join(*taints):
    best = None
    for taint in taints:
        if isinstance(taint, _ParamTaint):
            continue
        if _JOIN_ORDER.get(taint, 0) > _JOIN_ORDER.get(best, 0):
            best = taint
    return best


class _TaintScope:
    """Per-function RNG provenance environment."""

    def __init__(self, resolver: _UnitResolver):
        self.resolver = resolver
        self.env: dict[str, object] = {}
        node = resolver.unit.node
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            self.env[arg.arg] = _ParamTaint(arg.arg)
        # Two passes so forward references through reassignment settle.
        for _ in range(2):
            self._collect(node)

    def _collect(self, fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                self._bind_targets(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_targets([node.target], node.value)
            elif isinstance(node, ast.NamedExpr):
                self._bind_targets([node.target], node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                taint = self.taint_of(node.iter)
                if taint is not None:
                    self._bind_pattern(node.target, taint)
            elif isinstance(node, ast.Call):
                # list.append(tainted) upgrades the list's taint.
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("append", "extend")
                    and isinstance(func.value, ast.Name)
                    and node.args
                ):
                    taint = self.taint_of(node.args[0])
                    current = self.env.get(func.value.id)
                    joined = _join(current, taint)
                    if joined is not None:
                        self.env[func.value.id] = joined

    def _bind_targets(self, targets, value: ast.AST) -> None:
        taint = self.taint_of(value)
        if taint is None or isinstance(taint, _ParamTaint):
            return
        for target in targets:
            self._bind_pattern(target, taint)

    def _bind_pattern(self, target: ast.AST, taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_pattern(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind_pattern(target.value, taint)

    def taint_of(self, expr: ast.AST):
        """Provenance of *expr*: a taint constant, _ParamTaint or None."""
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Starred):
            return self.taint_of(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.taint_of(expr.value)
        if isinstance(expr, ast.IfExp):
            return _join(self.taint_of(expr.body), self.taint_of(expr.orelse))
        if isinstance(expr, ast.BinOp):
            return _join(self.taint_of(expr.left), self.taint_of(expr.right))
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return _join(*(self.taint_of(e) for e in expr.elts))
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            inner = dict(self.env)
            for gen in expr.generators:
                taint = self.taint_of(gen.iter)
                if taint is not None and not isinstance(taint, _ParamTaint):
                    saved, self.env = self.env, dict(self.env)
                    self._bind_pattern(gen.target, taint)
                    inner = self.env
                    self.env = saved
            saved, self.env = self.env, inner
            try:
                return self.taint_of(expr.elt)
            finally:
                self.env = saved
        if isinstance(expr, ast.Call):
            return self._call_taint(expr)
        return None

    def _call_taint(self, call: ast.Call):
        func = call.func
        # rng.integers(...) on a generator-tainted base is a raw draw.
        if isinstance(func, ast.Attribute) and func.attr in _DRAW_METHODS:
            base = self.taint_of(func.value)
            if base == GENERATOR:
                return RAWDRAW
        if isinstance(func, ast.Name) and func.id in (
            "list", "tuple", "sorted", "reversed"
        ):
            if call.args:
                return self.taint_of(call.args[0])
            return None
        resolved = self.resolver.resolve_call(call)
        if resolved is None:
            return None
        callee, external = resolved
        if external:
            if callee == "numpy.random.default_rng":
                return GENERATOR
            return None
        tail = callee.rsplit(".", 1)[-1]
        if tail == "spawn_seeds":
            return SPAWNED
        if tail in ("spawn_rngs", "ensure_rng"):
            return GENERATOR
        return None


# ----------------------------------------------------------------------
# project model
# ----------------------------------------------------------------------

#: resolved external calls that block the calling thread.
_BLOCKING_CALLS = frozenset({
    "time.sleep", "open", "io.open",
    "os.fsync", "os.replace", "os.rename", "os.remove", "os.unlink",
    "os.makedirs", "os.mkdir", "os.rmdir",
    "socket.create_connection", "tempfile.mkstemp",
    "tempfile.NamedTemporaryFile",
})
_BLOCKING_PREFIXES = ("subprocess.", "shutil.")
#: method names that perform sync file I/O regardless of receiver type.
_BLOCKING_METHODS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes", "fsync",
})

#: lock-ish name fragments for the CON101 lock-held heuristic.
_LOCKISH = ("lock", "cond", "mutex", "semaphore")


def _is_lockish(expr: ast.AST) -> bool:
    """Heuristic: does *expr* name a lock/condition object?"""
    if isinstance(expr, ast.Call):
        return _is_lockish(expr.func)
    name = _dotted(expr)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return any(frag in tail for frag in _LOCKISH)


def _scope_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk *fn*'s body without descending into nested function scopes."""
    stack: list[ast.AST] = list(getattr(fn, "body", []))
    stack.extend(getattr(fn, "finalbody", []))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass(frozen=True)
class _RawFinding:
    """One flow finding before it is attached to a LintContext."""

    rule: str
    rel_path: str
    line: int
    col: int
    message: str


@dataclass
class ProjectModel:
    """Symbol table + call graph + the precomputed flow findings."""

    root: pathlib.Path
    table: SymbolTable
    graph: CallGraph
    _findings: dict[str, list[_RawFinding]] | None = None
    _blocking: dict[str, tuple[str, str]] | None = None

    @property
    def work_measure(self) -> dict:
        """Deterministic counters the bench scenario tracks.

        Cache state (how many modules re-parsed) deliberately stays out:
        the bench gate compares these values exactly across runs.
        """
        return {
            "modules": len(self.table.modules),
            "call_edges": len(self.graph.edges),
        }

    def findings_for(self, rel_path: str, rule_id: str) -> list[_RawFinding]:
        """Precomputed findings of *rule_id* anchored in *rel_path*."""
        if self._findings is None:
            self._findings = {}
            for raw in _analyze(self):
                self._findings.setdefault(raw.rel_path, []).append(raw)
        return [
            raw
            for raw in self._findings.get(rel_path, [])
            if raw.rule == rule_id
        ]

    def blocking_reason(self, qualname: str) -> tuple[str, str] | None:
        """(primitive, via) when the sync unit *qualname* blocks."""
        if self._blocking is None:
            self._blocking = _blocking_closure(self)
        return self._blocking.get(qualname)


def _blocking_closure(model: ProjectModel) -> dict[str, tuple[str, str]]:
    """Fixed point: sync units whose calls reach a blocking primitive."""
    graph = model.graph
    blocked: dict[str, tuple[str, str]] = {}
    for qual in sorted(graph.units):
        unit = graph.units[qual]
        if unit.is_async:
            continue
        resolver = _UnitResolver(graph, unit)
        for node in ast.walk(unit.node):
            if isinstance(node, ast.Call):
                prim = _direct_blocking(node, resolver)
                if prim is not None:
                    blocked[qual] = (prim, qual)
                    break
    changed = True
    while changed:
        changed = False
        for qual in sorted(graph.units):
            if qual in blocked or graph.units[qual].is_async:
                continue
            for edge in graph.calls_from(qual):
                if edge.external or edge.callee not in graph.units:
                    continue
                if graph.units[edge.callee].is_async:
                    continue
                if edge.callee in blocked:
                    blocked[qual] = (blocked[edge.callee][0], edge.callee)
                    changed = True
                    break
    return blocked


def _direct_blocking(call: ast.Call, resolver: _UnitResolver) -> str | None:
    """The blocking primitive *call* invokes directly, if any."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_METHODS:
        return f".{func.attr}()"
    resolved = resolver.resolve_call(call)
    if resolved is None:
        return None
    callee, external = resolved
    if not external:
        return None
    if callee in _BLOCKING_CALLS:
        return callee
    if any(callee.startswith(p) for p in _BLOCKING_PREFIXES):
        return callee
    return None


#: process-wide project cache keyed by resolved root path.
_PROJECT_CACHE: dict[str, tuple[tuple, ProjectModel]] = {}


def clear_project_cache() -> None:
    """Drop cached project models (test isolation hook)."""
    _PROJECT_CACHE.clear()


def get_project(
    root: pathlib.Path,
    sources: dict[str, str] | None = None,
) -> ProjectModel:
    """Build (or reuse) the project model for the tree at *root*.

    Re-validation is cheap: the symbol table is rebuilt from the
    hash-keyed summary cache, and if the resulting (path, hash)
    signature matches the cached model the call graph and findings are
    reused wholesale.
    """
    table = build_symbol_table(root, sources=sources)
    if sources is not None:
        return ProjectModel(root=root, table=table, graph=build_call_graph(table))
    key = str(root.resolve())
    cached = _PROJECT_CACHE.get(key)
    if cached is not None and cached[0] == table.signature():
        return cached[1]
    model = ProjectModel(root=root, table=table, graph=build_call_graph(table))
    _PROJECT_CACHE[key] = (table.signature(), model)
    return model


# ----------------------------------------------------------------------
# the analysis pass
# ----------------------------------------------------------------------


def _analyze(model: ProjectModel) -> list[_RawFinding]:
    """Run every flow analysis over the whole project, in path order."""
    findings: list[_RawFinding] = []
    for module in sorted(
        model.table.modules.values(), key=lambda m: m.rel_path
    ):
        findings.extend(_seed_ambient(module, model))
    for qual in sorted(model.graph.units):
        unit = model.graph.units[qual]
        findings.extend(_seed_map_calls(unit, model))
        findings.extend(_lock_balance(unit, model))
    findings.extend(_async_rules(model))
    # run_trials dispatches through two TrialPool.map sites, so the same
    # caller can be classified twice — dedupe before sorting.
    unique = sorted(set(findings),
                    key=lambda r: (r.rel_path, r.line, r.col, r.rule))
    return unique


def _call_is_none_arg(call: ast.Call) -> bool:
    """True for an argless call or one passing a literal ``None``."""
    kw_named = [k for k in call.keywords if k.arg is not None]
    if not call.args and not kw_named:
        return True
    if len(call.args) == 1 and not kw_named:
        arg = call.args[0]
        return isinstance(arg, ast.Constant) and arg.value is None
    if not call.args and len(kw_named) == 1:
        value = kw_named[0].value
        return isinstance(value, ast.Constant) and value.value is None
    return False


def _seed_ambient(
    module: ModuleSummary, model: ProjectModel
) -> Iterator[_RawFinding]:
    """SEED101: RNGs constructed from ambient OS entropy."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name is None:
            continue
        resolved = module.resolve_local(name)
        hit = model.table.resolve_symbol(resolved)
        symbol = hit[1] if hit is not None else None
        ambient = False
        what = resolved
        if resolved in (
            "numpy.random.default_rng", "numpy.random.SeedSequence"
        ) and _call_is_none_arg(node):
            ambient = True
        elif symbol == "ensure_rng" and _call_is_none_arg(node):
            ambient = True
            what = "ensure_rng"
        if ambient:
            yield _RawFinding(
                "SEED101", module.rel_path, node.lineno, node.col_offset,
                f"`{what}` seeded from ambient OS entropy; experiments "
                "must thread an explicit seed (spawn_seeds / ensure_rng "
                "with a seed argument)",
            )


def _map_seeds_arg(call: ast.Call, callee: str) -> ast.AST | None:
    """The seeds/iterable argument of a TrialPool.map / run_trials call."""
    for keyword in call.keywords:
        if keyword.arg == "seeds":
            return keyword.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _is_trial_map(callee: str) -> bool:
    return callee.endswith(".TrialPool.map") or callee.endswith(".run_trials")


def _seed_map_calls(
    unit: FunctionUnit, model: ProjectModel
) -> Iterator[_RawFinding]:
    """SEED102/SEED103: provenance of values crossing trial boundaries."""
    scope: _TaintScope | None = None
    for edge in model.graph.calls_from(unit.qualname):
        if edge.external or not _is_trial_map(edge.callee):
            continue
        if edge.callee == unit.qualname:
            continue  # run_trials' own pool.map dispatch, checked at callers
        arg = _map_seeds_arg(edge.node, edge.callee)
        if arg is None:
            continue
        if scope is None:
            scope = _TaintScope(
                _UnitResolver(model.graph, unit)
            )
        taint = scope.taint_of(arg)
        if isinstance(taint, _ParamTaint):
            yield from _check_callers(unit, taint.name, model)
            continue
        yield from _classify_taint(
            taint, unit.module.rel_path, edge.node, edge.callee
        )


def _classify_taint(
    taint, rel_path: str, call: ast.Call, callee: str
) -> Iterator[_RawFinding]:
    short = callee.rsplit(".", 2)[-2:]
    label = ".".join(short)
    if taint == GENERATOR:
        yield _RawFinding(
            "SEED103", rel_path, call.lineno, call.col_offset,
            f"numpy Generator objects cross the `{label}` trial "
            "boundary; pass spawn_seeds ints and rebuild the generator "
            "per worker to keep serial and parallel runs bit-identical",
        )
    elif taint == RAWDRAW:
        yield _RawFinding(
            "SEED102", rel_path, call.lineno, call.col_offset,
            f"seed values reach `{label}` via raw generator draws "
            "instead of spawn_seeds; raw draws are not the documented "
            "child-seed derivation and break serial/parallel equivalence",
        )


def _check_callers(
    unit: FunctionUnit, param: str, model: ProjectModel
) -> Iterator[_RawFinding]:
    """Depth-1 interprocedural step: taint of *param* at each call site."""
    try:
        index = unit.params.index(param)
    except ValueError:
        return
    if unit.owner is not None:
        index -= 1  # caller's positional args exclude `self`
    for caller_edge in model.graph.callers_of(unit.qualname):
        caller = model.graph.units.get(caller_edge.caller)
        if caller is None:
            continue
        call = caller_edge.node
        arg: ast.AST | None = None
        for keyword in call.keywords:
            if keyword.arg == param:
                arg = keyword.value
        if arg is None and 0 <= index < len(call.args):
            arg = call.args[index]
        if arg is None:
            continue
        scope = _TaintScope(_UnitResolver(model.graph, caller))
        taint = scope.taint_of(arg)
        if isinstance(taint, _ParamTaint):
            continue  # deeper chains stay silent (zero-false-positive)
        yield from _classify_taint(
            taint, caller.module.rel_path, call, unit.qualname
        )


def _lock_balance(
    unit: FunctionUnit, model: ProjectModel
) -> Iterator[_RawFinding]:
    """CON103: ``.acquire()`` calls without count-matched ``.release()``."""
    counts: dict[str, list[int]] = {}
    first_line: dict[str, tuple[int, int]] = {}
    for node in ast.walk(unit.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in ("acquire", "release"):
            continue
        base = _dotted(func.value)
        if base is None or not _is_lockish(func.value):
            continue
        slot = counts.setdefault(base, [0, 0])
        slot[0 if func.attr == "acquire" else 1] += 1
        if func.attr == "acquire" and base not in first_line:
            first_line[base] = (node.lineno, node.col_offset)
    for base in sorted(counts):
        acquired, released = counts[base]
        if acquired > released:
            line, col = first_line[base]
            yield _RawFinding(
                "CON103", unit.module.rel_path, line, col,
                f"`{base}.acquire()` ({acquired}x) outnumbers "
                f"`.release()` ({released}x) in `{unit.qualname}`; an "
                "exception between them leaks the lock — use "
                f"`with {base}:` instead",
            )


@dataclass
class _AttrAccess:
    """One read/write of ``base.attr`` inside an async scope."""

    base: str
    attr: str
    write: bool
    segment: int
    wildcard: bool
    locked: bool
    line: int
    col: int


def _async_scopes(
    model: ProjectModel,
) -> Iterator[tuple[ModuleSummary, ast.AsyncFunctionDef, FunctionUnit]]:
    """Every async def in the project, with a resolver-capable unit."""
    by_node: dict[int, FunctionUnit] = {
        id(u.node): u for u in model.graph.units.values()
    }
    for module in sorted(
        model.table.modules.values(), key=lambda m: m.rel_path
    ):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            unit = by_node.get(id(node))
            if unit is None:
                unit = FunctionUnit(
                    f"{module.name}.{node.name}", module, node
                )
            yield module, node, unit


def _async_rules(model: ProjectModel) -> Iterator[_RawFinding]:
    """CON101 + CON102 over every ``async def`` scope."""
    for module, fn, unit in _async_scopes(model):
        awaited_calls: set[int] = set()
        awaits: list[tuple[int, int]] = []
        nodes = list(_scope_nodes(fn))
        for node in nodes:
            if isinstance(node, ast.Await):
                awaits.append((node.lineno, node.col_offset))
                if isinstance(node.value, ast.Call):
                    awaited_calls.add(id(node.value))
        awaits.sort()
        yield from _blocking_in_async(
            module, fn, unit, nodes, awaited_calls, model
        )
        if awaits:
            yield from _await_races(module, fn, unit, nodes, awaits)


def _blocking_in_async(
    module: ModuleSummary,
    fn: ast.AsyncFunctionDef,
    unit: FunctionUnit,
    nodes: list[ast.AST],
    awaited_calls: set[int],
    model: ProjectModel,
) -> Iterator[_RawFinding]:
    """CON102: blocking sync calls scheduled directly on the event loop."""
    resolver = _UnitResolver(model.graph, unit)
    for node in nodes:
        if not isinstance(node, ast.Call) or id(node) in awaited_calls:
            continue
        prim = _direct_blocking(node, resolver)
        if prim is not None:
            yield _RawFinding(
                "CON102", module.rel_path, node.lineno, node.col_offset,
                f"blocking call `{prim}` inside `async def {fn.name}` "
                "stalls the event loop; wrap it in asyncio.to_thread",
            )
            continue
        resolved = resolver.resolve_call(node)
        if resolved is None or resolved[1]:
            continue
        callee = resolved[0]
        if callee in model.graph.units and model.graph.units[callee].is_async:
            continue
        reason = model.blocking_reason(callee)
        if reason is not None:
            prim, via = reason
            detail = f" (reaches `{prim}` via `{via}`)" if via != callee \
                else f" (calls `{prim}`)"
            yield _RawFinding(
                "CON102", module.rel_path, node.lineno, node.col_offset,
                f"`{callee.rsplit('.', 1)[-1]}()` blocks{detail} inside "
                f"`async def {fn.name}`; wrap it in asyncio.to_thread",
            )


def _await_races(
    module: ModuleSummary,
    fn: ast.AsyncFunctionDef,
    unit: FunctionUnit,
    nodes: list[ast.AST],
    awaits: list[tuple[int, int]],
) -> Iterator[_RawFinding]:
    """CON101: shared attrs written on one side of an await, read on the
    other, without consistently holding a lock."""
    shared = set(unit.params) | {"self"}
    loop_wild: set[int] = set()
    locked_ids: set[int] = set()
    for node in nodes:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            has_await = any(
                isinstance(sub, ast.Await) for sub in _scope_nodes(node)
            ) or isinstance(node, ast.AsyncFor)
            if has_await:
                for sub in _scope_nodes(node):
                    loop_wild.add(id(sub))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_is_lockish(item.context_expr) for item in node.items):
                for sub in _scope_nodes(node):
                    locked_ids.add(id(sub))

    accesses: list[_AttrAccess] = []
    for node in nodes:
        if not isinstance(node, ast.Attribute):
            continue
        if not isinstance(node.value, ast.Name):
            continue
        if node.value.id not in shared:
            continue
        pos = (node.lineno, node.col_offset)
        accesses.append(
            _AttrAccess(
                base=node.value.id,
                attr=node.attr,
                write=isinstance(node.ctx, (ast.Store, ast.Del)),
                segment=bisect.bisect_left(awaits, pos),
                wildcard=id(node) in loop_wild,
                locked=id(node) in locked_ids,
                line=node.lineno,
                col=node.col_offset,
            )
        )
    by_attr: dict[tuple[str, str], list[_AttrAccess]] = {}
    for access in accesses:
        by_attr.setdefault((access.base, access.attr), []).append(access)
    for (base, attr), group in sorted(by_attr.items()):
        writes = [a for a in group if a.write]
        if not writes:
            continue
        flagged = None
        for write in writes:
            for other in group:
                if other is write:
                    continue
                crosses = (
                    write.wildcard or other.wildcard
                    or write.segment != other.segment
                )
                unlocked = not write.locked or not other.locked
                if crosses and unlocked:
                    flagged = write
                    break
            if flagged:
                break
        if flagged is not None:
            yield _RawFinding(
                "CON101", module.rel_path, flagged.line, flagged.col,
                f"`{base}.{attr}` is written on one side of an `await` "
                f"in `async def {fn.name}` and accessed on the other "
                "without consistently holding the owning lock; the "
                "scheduler may interleave another task at every await",
            )


# ----------------------------------------------------------------------
# rule classes
# ----------------------------------------------------------------------


class _FlowRule(Rule):
    """Base for rules that read the precomputed project analysis."""

    requires_flow = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield this rule's precomputed findings for the file."""
        project = ctx.project
        if project is None:
            return
        for raw in project.findings_for(ctx.rel_path, self.id):
            yield self.finding(ctx, raw.line, raw.col, raw.message)


@register
class AmbientRngRule(_FlowRule):
    """SEED101 — no RNG construction from ambient state."""

    id = "SEED101"
    severity = "error"
    summary = "RNG constructed from ambient OS entropy (no explicit seed)"
    rationale = (
        "Every generator in an experiment path must descend from an "
        "explicit seed, or reruns cannot reproduce the paper's numbers. "
        "`default_rng()`, `SeedSequence()` and `ensure_rng(None)` pull "
        "fresh OS entropy; the one sanctioned site is the `ensure_rng` "
        "None-branch itself, which callers opt into explicitly."
    )
    example_fix = (
        "`rng = np.random.default_rng()` -> "
        "`rng = ensure_rng(seed)` with a threaded seed parameter"
    )


@register
class NonSpawnedSeedsRule(_FlowRule):
    """SEED102 — seeds reaching a parallel map must come from spawn_seeds."""

    id = "SEED102"
    severity = "error"
    summary = "non-spawned seed values reach a TrialPool/parallel map"
    rationale = (
        "The serial/parallel equivalence proof (PR 1) hinges on "
        "spawn_seeds being the single child-seed derivation: workers "
        "rebuild `default_rng(seed)` and match the serial stream "
        "bit-for-bit. Raw generator draws used as seeds are a second, "
        "undocumented derivation that silently forks the contract."
    )
    example_fix = (
        "`pool.map(fn, [rng.integers(2**63) for _ in range(n)])` -> "
        "`pool.map(fn, spawn_seeds(rng, n))`"
    )


@register
class GeneratorBoundaryRule(_FlowRule):
    """SEED103 — Generator objects must not cross trial boundaries."""

    id = "SEED103"
    severity = "error"
    summary = "numpy Generator objects cross a TrialPool trial boundary"
    rationale = (
        "A Generator shipped to workers is consumed in chunk order, not "
        "trial order, so parallel runs diverge from serial ones the "
        "moment two trials share its stream (PR 1's contract). Only "
        "spawn_seeds ints may cross the boundary; each worker rebuilds "
        "its own generator."
    )
    example_fix = (
        "`run_trials(fn, spawn_rngs(rng, n))` -> "
        "`run_trials(fn, spawn_seeds(rng, n))`"
    )


@register
class AwaitRaceRule(_FlowRule):
    """CON101 — shared attributes must not straddle awaits unlocked."""

    id = "CON101"
    severity = "error"
    summary = "shared attribute written across an await without its lock"
    rationale = (
        "asyncio interleaves tasks at every await: an attribute of a "
        "shared object written in one await segment and read in another "
        "is a read-modify-write race unless every access holds the "
        "owning lock — exactly the serve-cache invariants PR 8 "
        "established dynamically."
    )
    example_fix = (
        "`self.count += 1; await flush(); self.count = 0` -> hold "
        "`with self._lock:` on both sides (or keep state task-local)"
    )


@register
class BlockingAsyncRule(_FlowRule):
    """CON102 — no blocking sync calls on the event loop."""

    id = "CON102"
    severity = "error"
    summary = "blocking call (sleep/sync file I/O) inside an async def"
    rationale = (
        "A blocking call on the event loop stalls every connected "
        "client at once — the serve latency gate (PR 8) measures p99 "
        "across concurrent clients, so one synchronous checkpoint can "
        "blow the budget for all of them. The call graph closure "
        "catches transitively-blocking project helpers, not just "
        "direct `time.sleep`/`open` calls."
    )
    example_fix = (
        "`server.checkpoint()` in an async def -> "
        "`await asyncio.to_thread(server.checkpoint)`"
    )


@register
class LockBalanceRule(_FlowRule):
    """CON103 — lock acquire/release must be count-balanced."""

    id = "CON103"
    severity = "error"
    summary = "lock .acquire() without a count-matched .release()"
    rationale = (
        "An exception between acquire() and release() leaves the lock "
        "held forever, deadlocking every other request thread — the "
        "admission controller and cache locks serialize the whole "
        "server. Context-manager form releases on every exit path."
    )
    example_fix = (
        "`self._lock.acquire(); ...; self._lock.release()` -> "
        "`with self._lock: ...`"
    )
