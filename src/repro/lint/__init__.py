"""``repro.lint`` — determinism & invariant static analysis for this repo.

The paper's claims are validated here by bit-identical, seed-exact
experiments: serial/parallel equivalence (PR 1), deterministic fault
injection (PR 2), RNG-inert observability (PR 3) and an exact logical-cost
bench gate (PR 4) all rest on invariants like "no unseeded randomness",
"no wall-clock in logic paths" and "every metric name is declared".  This
package makes those invariants *statically checkable* before any test
runs: an AST-based engine (:mod:`repro.lint.engine`) walks every module
under ``src/repro`` (plus the repo's Markdown docs) and applies a
project-specific rule set (:mod:`repro.lint.rules`,
:mod:`repro.lint.docrules`), while the whole-program flow layer
(:mod:`repro.lint.symbols` → :mod:`repro.lint.callgraph` →
:mod:`repro.lint.flowrules`) tracks seed provenance and asyncio races
across module boundaries.

Entry points
------------

- ``python -m repro lint [--format text|json] [--rules ...]
  [--baseline FILE] [--flow] [--graph FILE] [--changed-only]`` — the CLI
  gate (see :mod:`repro.cli`);
- :func:`run_lint` — lint the repo (or an explicit file list) in-process;
- :func:`lint_text` — lint one source string under a chosen relative path
  (how the rule unit tests drive single fixtures);
- :func:`changed_files` — the git-diff file set behind ``--changed-only``.

Suppressions are inline: ``# repro: noqa[DET002]`` on the offending line,
optionally followed by a justification.  Suppressions that match no
finding are themselves reported (rule ``NOQA001``), so the allowlist can
never rot.  The rule catalog is documented in ``docs/LINTING.md``, kept in
lockstep by ``tests/lint/test_docs_sync.py``.
"""

from __future__ import annotations

from .engine import (
    Finding,
    LintReport,
    Rule,
    RULES,
    changed_files,
    default_root,
    lint_text,
    rule_ids,
    run_lint,
)
from .report import (
    LINT_SCHEMA_VERSION,
    apply_baseline,
    load_baseline,
    make_baseline,
    render_json,
    render_text,
    write_baseline,
)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "RULES",
    "rule_ids",
    "run_lint",
    "lint_text",
    "changed_files",
    "default_root",
    "LINT_SCHEMA_VERSION",
    "render_text",
    "render_json",
    "make_baseline",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]
