"""Rendering and baseline handling for lint reports.

Two output formats, both fully deterministic (no timestamps, sorted
findings, sorted JSON keys):

- **text** — one ``path:line:col RULE message`` line per finding plus a
  one-line summary, for humans and CI logs;
- **json** — a versioned document (``schema_version``,
  ``LINT_SCHEMA_VERSION``) with the finding list, per-rule counts and the
  files/nodes work measure, for machines and golden tests.

Baselines let a dirty repo adopt the gate incrementally: a baseline file
is a fingerprint→count multiset of known findings; :func:`apply_baseline`
subtracts it so only *new* findings fail the gate.  Fingerprints are
line-insensitive (``rule::path::message``) so unrelated edits that shift
lines do not churn the baseline.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter

from ..exceptions import ParameterError
from .engine import Finding, LintReport

__all__ = [
    "LINT_SCHEMA_VERSION",
    "render_text",
    "render_json",
    "make_baseline",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
]

#: Version of the JSON report and baseline documents.
LINT_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col} {f.rule} [{f.severity}] {f.message}"
        for f in report.findings
    ]
    if report.findings:
        by_rule = Counter(f.rule for f in report.findings)
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"\n{len(report.findings)} finding(s) across "
            f"{report.files} file(s) ({breakdown})"
        )
    else:
        lines.append(
            f"lint OK ({report.files} files, {report.nodes} nodes, "
            f"{len(report.rules)} rules)"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    by_rule = Counter(f.rule for f in report.findings)
    doc = {
        "schema_version": LINT_SCHEMA_VERSION,
        "kind": "lint",
        "rules": report.rules,
        "files": report.files,
        "nodes": report.nodes,
        "findings": [f.to_dict() for f in report.findings],
        "counts": {
            "total": len(report.findings),
            "errors": len(report.errors),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    if report.flow is not None:
        doc["flow"] = report.flow
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def make_baseline(report: LintReport) -> dict:
    """Baseline document: fingerprint→count multiset of *report* findings."""
    counts = Counter(f.fingerprint() for f in report.findings)
    return {
        "schema_version": LINT_SCHEMA_VERSION,
        "kind": "lint-baseline",
        "fingerprints": dict(sorted(counts.items())),
    }


def write_baseline(report: LintReport, path: pathlib.Path | str) -> None:
    """Serialize :func:`make_baseline` of *report* to *path*."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(make_baseline(report), indent=2, sort_keys=True) + "\n"
    )


def load_baseline(path: pathlib.Path | str) -> dict:
    """Read and validate a baseline document written by this module."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(f"cannot read lint baseline {path}: {exc}")
    if doc.get("kind") != "lint-baseline":
        raise ParameterError(
            f"{path} is not a lint baseline (kind="
            f"{doc.get('kind')!r}); generate one with "
            "`python -m repro lint --write-baseline FILE`"
        )
    if doc.get("schema_version") != LINT_SCHEMA_VERSION:
        raise ParameterError(
            f"{path}: baseline schema_version "
            f"{doc.get('schema_version')!r} != {LINT_SCHEMA_VERSION}"
        )
    return doc


def apply_baseline(report: LintReport, baseline: dict) -> LintReport:
    """Return *report* minus findings covered by *baseline*.

    Matching is a per-fingerprint multiset subtraction: if the baseline
    records N findings with a fingerprint, the first N occurrences in the
    report are absorbed and any further ones stay — so a *new* instance
    of a known violation still fails the gate.
    """
    budget = Counter(baseline.get("fingerprints", {}))
    fresh: list[Finding] = []
    for finding in report.findings:
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return LintReport(
        findings=fresh,
        files=report.files,
        nodes=report.nodes,
        rules=list(report.rules),
    )
