"""Equi-width histograms — a structural baseline.

Equi-width histograms split the observed value range into ``k`` equal-width
intervals.  They are cheaper to build (no sorting required) but give no
guarantee on bucket *counts*, which is why commercial optimizers — and this
paper — prefer equi-height.  Included so benchmarks can show the contrast on
skewed data.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDataError, ParameterError

__all__ = ["EquiWidthHistogram"]


class EquiWidthHistogram:
    """A k-bucket equal-width histogram over ``[min_value, max_value]``."""

    def __init__(self, edges: np.ndarray, counts: np.ndarray):
        edges = np.asarray(edges, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.int64)
        if edges.size != counts.size + 1:
            raise ParameterError(
                f"{edges.size} edges do not fit {counts.size} buckets"
            )
        if (np.diff(edges) < 0).any():
            raise ParameterError("edges must be non-decreasing")
        if (counts < 0).any():
            raise ParameterError("bucket counts must be non-negative")
        self._edges = edges
        self._counts = counts

    @classmethod
    def from_values(cls, values: np.ndarray, k: int) -> "EquiWidthHistogram":
        """Build over the observed range of *values*."""
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise EmptyDataError("cannot build a histogram over an empty value set")
        lo, hi = float(values.min()), float(values.max())
        if lo == hi:
            edges = np.linspace(lo, lo + 1.0, k + 1)
            counts = np.zeros(k, dtype=np.int64)
            counts[0] = values.size
            return cls(edges, counts)
        edges = np.linspace(lo, hi, k + 1)
        counts, _ = np.histogram(values, bins=edges)
        return cls(edges, counts.astype(np.int64))

    @property
    def k(self) -> int:
        """Number of buckets."""
        return int(self._counts.size)

    @property
    def edges(self) -> np.ndarray:
        """Bucket edges, ``k + 1`` ascending values."""
        return self._edges

    @property
    def counts(self) -> np.ndarray:
        """Per-bucket value counts."""
        return self._counts

    @property
    def total(self) -> int:
        """Total number of values across all buckets."""
        return int(self._counts.sum())

    def estimate_leq(self, value: float) -> float:
        """Estimated number of values ``<= value`` (linear interpolation)."""
        if value < self._edges[0]:
            return 0.0
        if value >= self._edges[-1]:
            return float(self.total)
        j = int(np.searchsorted(self._edges, value, side="right")) - 1
        j = min(j, self.k - 1)
        below = float(self._counts[:j].sum())
        lo, hi = self._edges[j], self._edges[j + 1]
        if hi > lo:
            below += float(self._counts[j]) * (value - lo) / (hi - lo)
        return below

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated count of values in ``[lo, hi]``."""
        if lo > hi:
            raise ParameterError(f"need lo <= hi, got [{lo}, {hi}]")
        return max(0.0, self.estimate_leq(hi) - self.estimate_leq(lo))

    def __repr__(self) -> str:
        return f"EquiWidthHistogram(k={self.k}, total={self.total})"
