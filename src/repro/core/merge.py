"""Merging equi-height histograms.

Engines need this for partitioned tables: each partition is ANALYZEd
separately (possibly on different nodes), and the optimizer wants one
histogram for the whole table.  Exactly merging is impossible from the
summaries alone; the standard approximation implemented here is:

1. take the union of both histograms' separators (plus extrema) as a fine
   partition of the merged domain,
2. apportion each input histogram's counts onto that partition with its own
   interpolation rules (so EQ_ROWS point masses stay points),
3. re-bucket the summed fine counts into ``k`` equi-height buckets.

The result is exact wherever the inputs were exact at their own separators,
and the interpolation error inside buckets is bounded by the inputs'
within-bucket resolution — the same uniformity assumption range estimation
already makes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .histogram import EquiHeightHistogram

__all__ = ["merge_equi_height"]


def merge_equi_height(
    left: EquiHeightHistogram,
    right: EquiHeightHistogram,
    k: int | None = None,
) -> EquiHeightHistogram:
    """Merge two equi-height histograms into one k-bucket histogram.

    Parameters
    ----------
    left, right:
        Histograms over the same attribute (e.g. two partitions).  Their
        value ranges may overlap arbitrarily or be disjoint.
    k:
        Bucket count for the result; defaults to ``max(left.k, right.k)``.
    """
    if k is None:
        k = max(left.k, right.k)
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    with _trace.span(
        "core.merge_equi_height", k=k, total=left.total + right.total
    ):
        _metrics.inc("repro_histogram_merges_total")
        return _merge_equi_height(left, right, k)


def _merge_equi_height(
    left: EquiHeightHistogram,
    right: EquiHeightHistogram,
    k: int,
) -> EquiHeightHistogram:
    """Instrumentation-free body of :func:`merge_equi_height`."""

    lo = min(left.min_value, right.min_value)
    hi = max(left.max_value, right.max_value)
    cuts = np.unique(
        np.concatenate(
            (
                [lo, hi],
                left.separators,
                right.separators,
                [left.min_value, left.max_value],
                [right.min_value, right.max_value],
            )
        )
    )

    # Fine-grained mass per cut interval (a, b], from both inputs, keeping
    # point mass on cut values where the inputs know it (EQ_ROWS).
    fine_counts = np.zeros(cuts.size, dtype=np.float64)  # mass ending AT cuts[i]
    for hist in (left, right):
        prev = hist.estimate_lt(float(cuts[0]))
        # Mass exactly at the first cut:
        fine_counts[0] += hist.estimate_leq(float(cuts[0])) - prev
        for i in range(1, cuts.size):
            below = hist.estimate_leq(float(cuts[i]))
            start = hist.estimate_leq(float(cuts[i - 1]))
            fine_counts[i] += max(0.0, below - start)

    total = left.total + right.total
    fine_counts *= total / max(fine_counts.sum(), 1e-12)

    # Re-bucket: walk the fine partition accumulating mass, placing a
    # separator whenever the running mass crosses the next multiple of
    # total/k.  Each cut value is a legitimate separator candidate (it was
    # a separator or extremum of an input).
    target = total / k
    separators: list[float] = []
    running = 0.0
    for i in range(cuts.size - 1):
        running += fine_counts[i]
        while len(separators) < k - 1 and running >= target * (
            len(separators) + 1
        ):
            separators.append(float(cuts[i]))
    while len(separators) < k - 1:
        separators.append(float(cuts[-1]))

    sep_array = np.asarray(separators, dtype=np.float64)

    # Final counts: mass of (s_{j-1}, s_j] under the fine partition.
    cum_fine = np.cumsum(fine_counts)

    def mass_leq(x: float) -> float:
        idx = int(np.searchsorted(cuts, x, side="right")) - 1
        return float(cum_fine[idx]) if idx >= 0 else 0.0

    bucket_edges = [mass_leq(s) for s in sep_array]
    edges = np.concatenate(([0.0], bucket_edges, [total]))
    # Largest-remainder apportionment: rounding each bucket independently and
    # dumping the residual on the last bucket loses mass whenever that bucket
    # is already (near-)empty — e.g. heavy duplication parks all the mass at
    # one cut, the last bucket rounds to 0, and a negative residual gets
    # clamped away.  Floor everything, then hand out the exact remainder to
    # the buckets with the largest fractional parts.
    raw = np.maximum(np.diff(edges), 0.0)
    counts = np.floor(raw).astype(np.int64)
    shortfall = total - int(counts.sum())
    if shortfall > 0:
        order = np.argsort(-(raw - counts), kind="stable")
        for i in range(shortfall):
            counts[order[i % counts.size]] += 1
    elif shortfall < 0:
        # Only reachable through float noise in ``raw``; drain from the
        # fullest buckets so counts stay non-negative.
        deficit = -shortfall
        for j in np.argsort(-counts, kind="stable"):
            take = min(int(counts[j]), deficit)
            counts[j] -= take
            deficit -= take
            if deficit == 0:
                break

    # Carry over eq mass for separators both inputs can attest to.
    eq = np.zeros(sep_array.size, dtype=np.float64)
    for hist in (left, right):
        for j, s in enumerate(sep_array):
            eq[j] += hist.estimate_leq(float(s)) - hist.estimate_lt(float(s))
    eq_counts = np.minimum(
        np.round(eq).astype(np.int64), np.maximum(counts[:-1], 0)
    )

    return EquiHeightHistogram(
        sep_array,
        counts,
        min_value=lo,
        max_value=hi,
        eq_counts=eq_counts,
    )
