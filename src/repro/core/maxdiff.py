"""MaxDiff(V,A) histograms — the Ioannidis-Poosala structure [15, 26].

The paper's closing sentence of Section 1 names extending its sampling
results to "other histogram structures [15, 16]" as ongoing work; this
module provides the most prominent of those structures so the extension can
be exercised.

A MaxDiff(V,A) histogram places its ``k-1`` bucket boundaries between the
adjacent distinct values with the ``k-1`` largest differences in *area*
(frequency x spread).  Skew thus lands on bucket boundaries: a value whose
frequency jumps relative to its neighbours gets isolated, which makes
MaxDiff far more robust than equi-width and competitive with equi-height
under the uniform-spread intra-bucket assumption.

Construction here is exact over a value multiset (or a sample, like every
other histogram in the library); buckets store tuple counts *and* distinct
counts, and range estimation uses the standard continuous interpolation so
results are comparable with :class:`~repro.core.histogram.EquiHeightHistogram`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EmptyDataError, ParameterError

__all__ = ["MaxDiffBucket", "MaxDiffHistogram"]


@dataclass(frozen=True)
class MaxDiffBucket:
    """One MaxDiff bucket over the closed value range ``[lo, hi]``."""

    lo: float
    hi: float
    count: int
    distinct: int

    @property
    def width(self) -> float:
        """Bucket width ``hi - lo``."""
        return self.hi - self.lo


class MaxDiffHistogram:
    """A MaxDiff(V,A) k-histogram."""

    def __init__(self, buckets: list[MaxDiffBucket]):
        if not buckets:
            raise ParameterError("a histogram needs at least one bucket")
        for a, b in zip(buckets, buckets[1:]):
            if b.lo < a.hi:
                raise ParameterError("buckets must be disjoint and ordered")
        self._buckets = list(buckets)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values: np.ndarray, k: int) -> "MaxDiffHistogram":
        """Build a MaxDiff(V,A) histogram with at most *k* buckets."""
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        values = np.asarray(values)
        if values.size == 0:
            raise EmptyDataError("cannot build a histogram over an empty value set")
        distinct, counts = np.unique(values, return_counts=True)
        m = distinct.size
        if m == 1 or k == 1:
            return cls(
                [
                    MaxDiffBucket(
                        float(distinct[0]),
                        float(distinct[-1]),
                        int(counts.sum()),
                        int(m),
                    )
                ]
            )

        # Area of distinct value i: frequency x spread to the next value.
        # The last value gets the mean spread so it is comparable.
        spreads = np.empty(m, dtype=np.float64)
        spreads[:-1] = np.diff(distinct).astype(np.float64)
        spreads[-1] = spreads[:-1].mean() if m > 1 else 1.0
        areas = counts * spreads

        # Boundaries go after the k-1 largest adjacent area differences.
        diffs = np.abs(np.diff(areas))
        num_boundaries = min(k - 1, diffs.size)
        boundary_positions = np.sort(
            np.argpartition(-diffs, num_boundaries - 1)[:num_boundaries]
        )

        buckets = []
        start = 0
        cuts = list(boundary_positions + 1) + [m]
        for end in cuts:
            buckets.append(
                MaxDiffBucket(
                    lo=float(distinct[start]),
                    hi=float(distinct[end - 1]),
                    count=int(counts[start:end].sum()),
                    distinct=int(end - start),
                )
            )
            start = end
        return cls(buckets)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of buckets."""
        return len(self._buckets)

    @property
    def total(self) -> int:
        """Total number of values across all buckets."""
        return sum(b.count for b in self._buckets)

    def buckets(self) -> list[MaxDiffBucket]:
        """The buckets, in value order."""
        return list(self._buckets)

    @property
    def min_value(self) -> float:
        """Smallest value the histogram covers."""
        return self._buckets[0].lo

    @property
    def max_value(self) -> float:
        """Largest value the histogram covers."""
        return self._buckets[-1].hi

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate_leq(self, value: float) -> float:
        """Estimated count of values ``<= value`` (uniform-spread model)."""
        total = 0.0
        for bucket in self._buckets:
            if value >= bucket.hi:
                total += bucket.count
            elif value < bucket.lo:
                break
            else:
                if bucket.hi > bucket.lo:
                    fraction = (value - bucket.lo) / (bucket.hi - bucket.lo)
                else:
                    fraction = 1.0
                total += bucket.count * fraction
                break
        return total

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated count of values in the closed range ``[lo, hi]``."""
        if lo > hi:
            raise ParameterError(f"need lo <= hi, got [{lo}, {hi}]")
        # Include point mass at lo for single-value buckets.
        below_lo = 0.0
        for bucket in self._buckets:
            if lo > bucket.hi:
                below_lo += bucket.count
            elif lo > bucket.lo:
                if bucket.hi > bucket.lo:
                    below_lo += bucket.count * (lo - bucket.lo) / (
                        bucket.hi - bucket.lo
                    )
                break
            else:
                break
        return max(0.0, self.estimate_leq(hi) - below_lo)

    def estimate_distinct(self) -> int:
        """Total distinct values represented (exact when built from data)."""
        return sum(b.distinct for b in self._buckets)

    def __repr__(self) -> str:
        return f"MaxDiffHistogram(k={self.k}, total={self.total})"
