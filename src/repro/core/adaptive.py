"""CVB — Cross-Validation based Block sampling (Section 4 of the paper).

The algorithm samples disk blocks in increments, maintains an equi-height
histogram over all tuples seen so far, and uses each fresh increment to
*cross-validate* the current histogram: partition the increment by the
current separators and measure the deviation δ_i (Definition 3).  Sampling
stops when δ_i drops below ``f * s_i / k`` where ``s_i`` is the increment's
tuple count — justified by Theorem 7, which shows this test reliably
separates histograms with error ``> 2f·n/k`` from those with error
``< f·n/(2k)``.

Configurable axes (the paper's "twists", Section 4.2):

- **step schedule** — doubling (analysis), the SQL Server ``5i*sqrt(n)``
  schedule (Section 7.1), or linear (ablation baseline);
- **validation sample** — the full increment, or one random tuple per block;
- **validation metric** — per-bucket counts (Definition 3) or the
  duplicate-safe fractional metric f′ (Definition 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .._rng import RngLike, ensure_rng
from ..exceptions import BuildAbortedError, ConvergenceError, ParameterError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sampling.block_sampler import BlockSampleStream
from ..sampling.schedule import DoublingSchedule, StepSchedule
from ..storage.faults import BudgetTracker, ReadBudget, RetryPolicy
from ..storage.heapfile import HeapFile
from . import kernels
from .error_metrics import fractional_max_error, relative_deviation
from .histogram import EquiHeightHistogram

__all__ = ["CVBConfig", "CVBIteration", "CVBResult", "CVBSampler", "cvb_build"]

VALIDATION_MODES = ("full_increment", "one_per_block")
VALIDATION_METRICS = ("count", "fractional")


@dataclass(frozen=True)
class CVBConfig:
    """Tuning knobs for :class:`CVBSampler`.

    Parameters
    ----------
    k:
        Number of histogram buckets.
    f:
        Target max error as a fraction of the ideal bucket size ``n/k``.
    gamma:
        Failure probability used to size the initial sample (Theorem 4).
    validation:
        ``"full_increment"`` validates with every tuple of the fresh blocks;
        ``"one_per_block"`` uses one random tuple per block (decorrelated
        validation — the Section 4.2 twist).
    metric:
        ``"fractional"`` (default) thresholds f′ (Definition 4) against
        ``f`` — the duplicate-safe generalisation, which coincides with the
        plain fraction on distinct data; ``"count"`` thresholds δ_i
        (Definition 3) against ``f*s/k`` and is only meaningful when no
        value's multiplicity approaches ``n/k`` (Section 5).
    max_sampled_fraction:
        Hard budget: stop (without convergence) once this fraction of the
        file's pages has been sampled.  ``1.0`` allows a full scan, at which
        point the histogram is exact and the run is marked converged.
    min_validation_tuples:
        Increments smaller than this are merged without being trusted as a
        convergence signal (guards the early iterations where Theorem 7's
        sample-size requirement is not yet met).
    """

    k: int
    f: float = 0.1
    gamma: float = 0.01
    validation: str = "full_increment"
    metric: str = "fractional"
    max_sampled_fraction: float = 1.0
    min_validation_tuples: int = 0

    def __post_init__(self):
        if self.k <= 0:
            raise ParameterError(f"k must be positive, got {self.k}")
        if not 0 < self.f <= 1:
            raise ParameterError(f"f must be in (0, 1], got {self.f}")
        if not 0 < self.gamma < 1:
            raise ParameterError(f"gamma must be in (0, 1), got {self.gamma}")
        if self.validation not in VALIDATION_MODES:
            raise ParameterError(
                f"validation must be one of {VALIDATION_MODES}, "
                f"got {self.validation!r}"
            )
        if self.metric not in VALIDATION_METRICS:
            raise ParameterError(
                f"metric must be one of {VALIDATION_METRICS}, got {self.metric!r}"
            )
        if not 0 < self.max_sampled_fraction <= 1:
            raise ParameterError(
                "max_sampled_fraction must be in (0, 1], got "
                f"{self.max_sampled_fraction}"
            )
        if self.min_validation_tuples < 0:
            raise ParameterError(
                "min_validation_tuples must be non-negative, got "
                f"{self.min_validation_tuples}"
            )


@dataclass(frozen=True)
class CVBIteration:
    """Trace record of one cross-validation round."""

    index: int
    increment_blocks: int
    increment_tuples: int
    cumulative_blocks: int
    cumulative_tuples: int
    observed_error: float
    threshold: float
    passed: bool


@dataclass
class CVBResult:
    """Outcome of a CVB run.

    Attributes
    ----------
    histogram:
        The final equi-height histogram (separators from, and counts of, the
        accumulated sample).
    sample:
        The accumulated sample, sorted.
    iterations:
        Per-round trace (round 0 is the initial, unvalidated sample).
    converged:
        True when the cross-validation test passed (or the whole file was
        read, making the histogram exact).
    exhausted:
        True when every page of the file ended up in the sample.
    pages_sampled / tuples_sampled:
        Total sampling cost.
    """

    histogram: EquiHeightHistogram
    sample: np.ndarray
    iterations: list[CVBIteration] = field(default_factory=list)
    converged: bool = False
    exhausted: bool = False
    pages_sampled: int = 0
    tuples_sampled: int = 0
    #: Pages consumed from the sampling order but never delivered (fault
    #: injection: corrupt, or transient retries exhausted).
    pages_skipped: int = 0
    #: Ids of the pages that were read, in sampling order (enables refine).
    sampled_pages: np.ndarray | None = None

    def sampling_rate(self, n: int) -> float:
        """Fraction of the table's tuples that were read."""
        if n <= 0:
            raise ParameterError(f"n must be positive, got {n}")
        return self.tuples_sampled / n

    def describe(self) -> str:
        """Multi-line, human-readable trace of the run."""
        lines = [
            f"CVB run: {'converged' if self.converged else 'budget-stopped'}"
            f"{' (file exhausted)' if self.exhausted else ''}, "
            f"{self.pages_sampled:,} pages / {self.tuples_sampled:,} tuples"
            + (
                f", {self.pages_skipped:,} unreadable pages skipped"
                if self.pages_skipped
                else ""
            )
        ]
        for it in self.iterations:
            if it.index == 0:
                lines.append(
                    f"  round 0: initial sample of {it.increment_tuples:,} tuples"
                )
            else:
                verdict = "PASS" if it.passed else "fail"
                lines.append(
                    f"  round {it.index}: +{it.increment_tuples:,} tuples, "
                    f"error {it.observed_error:.4g} vs threshold "
                    f"{it.threshold:.4g} [{verdict}]"
                )
        return "\n".join(lines)


class CVBSampler:
    """Runs the adaptive sampling algorithm of Section 4.2 on a heap file.

    Parameters
    ----------
    config / schedule:
        The paper's tuning knobs (see :class:`CVBConfig`).
    retry:
        Optional :class:`~repro.storage.faults.RetryPolicy`: transient read
        faults are retried, and permanently unreadable pages are skipped
        from the sampling order and replaced by fresh draws, so the
        accumulated sample stays uniform over the readable pages.
    budget:
        Optional :class:`~repro.storage.faults.ReadBudget`: a per-build cap
        on failures/skips/simulated time.  Exceeding it aborts the build
        with :class:`~repro.exceptions.BuildAbortedError`.
    """

    def __init__(
        self,
        config: CVBConfig,
        schedule: StepSchedule | None = None,
        retry: RetryPolicy | None = None,
        budget: ReadBudget | None = None,
    ):
        self.config = config
        self._schedule = schedule
        self._retry = retry
        self._budget = budget

    def _budget_tracker(self, heapfile: HeapFile) -> BudgetTracker | None:
        if self._budget is None:
            return None
        return self._budget.tracker(heapfile.num_pages)

    def run(self, heapfile: HeapFile, rng: RngLike = None) -> CVBResult:
        """Build an approximate equi-height histogram for *heapfile*.

        Follows the algorithm box of Section 4.2:

        1. size the initial sample (see below) and build ``H_0``;
        2. repeatedly sample ``g_i`` fresh blocks, cross-validate, and merge
           until the observed deviation clears the threshold.
        """
        cfg = self.config
        generator = ensure_rng(rng)
        n = heapfile.num_records
        if n == 0:
            raise ParameterError("cannot build statistics over an empty file")
        with _trace.span(
            "cvb.build",
            iostats=heapfile.iostats,
            phase="run",
            k=cfg.k,
            f=cfg.f,
            metric=cfg.metric,
            validation=cfg.validation,
        ) as build_span:
            return self._run(heapfile, generator, build_span)

    def _run(self, heapfile: HeapFile, generator, build_span) -> CVBResult:
        """Body of :meth:`run`, factored out so the build span wraps it."""
        cfg = self.config
        stream = BlockSampleStream(
            heapfile,
            rng=generator,
            retry=self._retry,
            budget=self._budget_tracker(heapfile),
        )
        increments = self._increments_for(heapfile)
        page_budget = max(
            1, math.floor(cfg.max_sampled_fraction * heapfile.num_pages)
        )

        first_blocks = min(next(increments), page_budget)
        sample = np.sort(stream.take(first_blocks))
        if sample.size == 0:
            if stream.pages_skipped:
                raise BuildAbortedError(
                    "initial sample is empty: every sampled page was "
                    f"unreadable ({stream.pages_skipped} skipped)"
                )
            raise ParameterError("initial sample is empty; file has no tuples")
        histogram = EquiHeightHistogram.from_sorted_values(sample, cfg.k)

        iterations = [
            CVBIteration(
                index=0,
                increment_blocks=stream.pages_taken,
                increment_tuples=int(sample.size),
                cumulative_blocks=stream.pages_taken,
                cumulative_tuples=int(sample.size),
                observed_error=float("nan"),
                threshold=float("nan"),
                passed=False,
            )
        ]
        return self._drive(
            heapfile,
            stream,
            sample,
            histogram,
            iterations,
            increments,
            page_budget,
            generator,
            prior_pages=None,
            build_span=build_span,
        )

    def refine(
        self,
        heapfile: HeapFile,
        previous: CVBResult,
        rng: RngLike = None,
    ) -> CVBResult:
        """Resume a previous run toward this sampler's (tighter) target.

        The previous run's accumulated sample is reused as-is and fresh
        blocks are drawn only from pages it never touched, so the combined
        sample stays a uniform page sample without replacement.  Useful when
        statistics built at a coarse ``f`` turn out to need sharpening: the
        already-paid page reads are not repeated.
        """
        cfg = self.config
        if previous.sampled_pages is None:
            raise ParameterError(
                "previous result carries no sampled-page ids; it cannot be "
                "refined (was it deserialised?)"
            )
        generator = ensure_rng(rng)
        with _trace.span(
            "cvb.build",
            iostats=heapfile.iostats,
            phase="refine",
            k=cfg.k,
            f=cfg.f,
            metric=cfg.metric,
            validation=cfg.validation,
        ) as build_span:
            return self._refine(heapfile, previous, generator, build_span)

    def _refine(
        self,
        heapfile: HeapFile,
        previous: CVBResult,
        generator,
        build_span,
    ) -> CVBResult:
        """Body of :meth:`refine`, factored out so the build span wraps it."""
        cfg = self.config
        stream = BlockSampleStream(
            heapfile,
            rng=generator,
            exclude=previous.sampled_pages,
            retry=self._retry,
            budget=self._budget_tracker(heapfile),
        )
        if self._schedule is not None:
            increments = self._schedule.increments()
        else:
            # Continue the doubling from the held sample's size: the first
            # fresh increment matches what is already in hand, so the
            # accumulated sample keeps doubling — restarting small would
            # re-pay the whole geometric series and erase the savings.
            held_blocks = max(1, len(previous.sampled_pages))
            increments = DoublingSchedule(
                min(held_blocks, max(1, heapfile.num_pages))
            ).increments()
            # The held sample already played the schedule's round-0 role;
            # fresh increments start at the doubling continuation (held,
            # 2*held, 4*held, ...).
            next(increments)
        page_budget = max(
            1, math.floor(cfg.max_sampled_fraction * heapfile.num_pages)
        )
        sample = np.asarray(previous.sample)
        histogram = EquiHeightHistogram.from_sorted_values(sample, cfg.k)
        iterations = [
            CVBIteration(
                index=0,
                increment_blocks=len(previous.sampled_pages),
                increment_tuples=int(sample.size),
                cumulative_blocks=len(previous.sampled_pages),
                cumulative_tuples=int(sample.size),
                observed_error=float("nan"),
                threshold=float("nan"),
                passed=False,
            )
        ]
        return self._drive(
            heapfile,
            stream,
            sample,
            histogram,
            iterations,
            increments,
            page_budget,
            generator,
            prior_pages=np.asarray(previous.sampled_pages),
            build_span=build_span,
        )

    def _increments_for(self, heapfile: HeapFile):
        """The configured schedule's increments, defaulting to the prototype.

        The default follows Section 7.1's practice: start at ~5*sqrt(n)
        tuples and double.  The algorithm box's g_0 = r/b from Theorem 4 is
        available via DoublingSchedule(bounds.initial_blocks(...)), but that
        bound's constant is conservative enough to force near-full scans at
        moderate n — the whole point of cross-validation is stopping far
        earlier when the data allows.
        """
        if self._schedule is not None:
            return self._schedule.increments()
        n = heapfile.num_records
        b = heapfile.blocking_factor
        initial = max(1, math.ceil(5.0 * math.sqrt(n) / b))
        return DoublingSchedule(min(initial, heapfile.num_pages)).increments()

    def _drive(
        self,
        heapfile: HeapFile,
        stream: BlockSampleStream,
        sample: np.ndarray,
        histogram: EquiHeightHistogram,
        iterations: list[CVBIteration],
        increments,
        page_budget: int,
        generator,
        prior_pages: np.ndarray | None,
        build_span=None,
    ) -> CVBResult:
        cfg = self.config
        prior_count = 0 if prior_pages is None else len(prior_pages)

        converged = False
        while not converged:
            if stream.exhausted:
                # Every candidate page sampled: the accumulated sample is the
                # whole file, so the histogram is exact.
                converged = True
                break
            if prior_count + stream.pages_taken >= page_budget:
                break

            want = next(increments)
            want = min(want, page_budget - prior_count - stream.pages_taken)
            if want <= 0:
                break

            with _trace.span(
                "cvb.iteration",
                iostats=heapfile.iostats,
                index=len(iterations),
                requested_blocks=int(want),
            ) as iteration_span:
                if cfg.validation == "one_per_block":
                    increment, validation_values = (
                        stream.take_one_tuple_per_block(want, rng=generator)
                    )
                else:
                    increment = stream.take(want)
                    validation_values = increment
                if increment.size == 0:
                    iteration_span.set(empty_increment=True)
                    break

                observed, threshold = self._validate(
                    histogram, sample, validation_values
                )
                trusted = validation_values.size >= cfg.min_validation_tuples
                passed = trusted and observed < threshold

                # Step 4(c): merge and rebuild H_i whether or not the test
                # passed (the algorithm box outputs the *rebuilt* histogram
                # on exit).
                sample = _merge_sorted(sample, np.sort(increment))
                histogram = EquiHeightHistogram.from_sorted_values(
                    sample, cfg.k
                )
                converged = passed

                _metrics.inc("repro_cvb_iterations_total")
                if threshold > 0:
                    _metrics.observe(
                        "repro_cvb_deviation_ratio",
                        float(observed) / float(threshold),
                    )
                iteration_span.set(
                    increment_tuples=int(increment.size),
                    observed_error=float(observed),
                    threshold=float(threshold),
                    passed=passed,
                )

            iterations.append(
                CVBIteration(
                    index=len(iterations),
                    increment_blocks=int(want),
                    increment_tuples=int(increment.size),
                    cumulative_blocks=prior_count + stream.pages_taken,
                    cumulative_tuples=int(sample.size),
                    observed_error=float(observed),
                    threshold=float(threshold),
                    passed=passed,
                )
            )

        if stream.exhausted and not converged:
            converged = True

        if prior_pages is None:
            sampled_pages = stream.taken_ids
        else:
            sampled_pages = np.concatenate([prior_pages, stream.taken_ids])

        outcome = "converged" if converged else "budget_stopped"
        _metrics.inc("repro_cvb_builds_total", outcome=outcome)
        _metrics.observe("repro_cvb_pages_sampled", int(sampled_pages.size))
        _metrics.observe("repro_cvb_tuples_sampled", int(sample.size))
        if build_span is not None:
            build_span.set(
                outcome=outcome,
                iterations=len(iterations),
                pages_sampled=int(sampled_pages.size),
                tuples_sampled=int(sample.size),
                pages_skipped=stream.pages_skipped,
            )

        return CVBResult(
            histogram=histogram,
            sample=sample,
            iterations=iterations,
            converged=converged,
            exhausted=stream.exhausted,
            pages_sampled=int(sampled_pages.size),
            tuples_sampled=int(sample.size),
            pages_skipped=stream.pages_skipped,
            sampled_pages=sampled_pages,
        )

    def run_strict(self, heapfile: HeapFile, rng: RngLike = None) -> CVBResult:
        """Like :meth:`run` but raises :class:`ConvergenceError` when the
        page budget is exhausted before the cross-validation test passes."""
        result = self.run(heapfile, rng=rng)
        if not result.converged:
            raise ConvergenceError(
                f"CVB did not converge within "
                f"{self.config.max_sampled_fraction:.0%} of the file "
                f"({result.pages_sampled} pages sampled)",
                result=result,
            )
        return result

    def _validate(
        self,
        histogram: EquiHeightHistogram,
        accumulated_sample: np.ndarray,
        validation_values: np.ndarray,
    ) -> tuple[float, float]:
        """Return ``(observed_error, threshold)`` for the configured metric."""
        cfg = self.config
        if validation_values.size == 0:
            return float("inf"), 0.0
        if cfg.metric == "fractional":
            observed = fractional_max_error(
                histogram.separators, accumulated_sample, validation_values
            )
            return observed, cfg.f
        observed = relative_deviation(histogram, validation_values)
        threshold = cfg.f * validation_values.size / cfg.k
        return observed, threshold


def cvb_build(
    heapfile: HeapFile,
    k: int,
    f: float = 0.1,
    gamma: float = 0.01,
    rng: RngLike = None,
    retry: RetryPolicy | None = None,
    budget: ReadBudget | None = None,
    **config_kwargs,
) -> CVBResult:
    """One-call convenience wrapper around :class:`CVBSampler`."""
    config = CVBConfig(k=k, f=f, gamma=gamma, **config_kwargs)
    return CVBSampler(config, retry=retry, budget=budget).run(heapfile, rng=rng)


def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays into one sorted array.

    Delegates to :func:`repro.core.kernels.merge_sorted`: the scalar kernel
    is the historical stable sort of the concatenation, the vector kernel
    scatters both runs to their final ranks in one pass (Section 7.1,
    extension 2 — the CVB increment merge).
    """
    return kernels.merge_sorted(a, b)
