"""Vectorized hot-path kernels, with a scalar twin for every one.

The sampling → sort → separator-extraction → error-metric pipeline is where
every figure and bench scenario spends its time.  This module rewrites those
inner loops as numpy-batched **kernels** while keeping the original
per-record implementations alive as their **scalar** twins:

- :func:`gather_pages` — materialise many page payloads at once (the batched
  page-draw behind :meth:`~repro.storage.heapfile.HeapFile.read_pages` and
  :class:`~repro.sampling.block_sampler.BlockSampleStream`);
- :func:`equi_height_separators_unsorted` — separator extraction from an
  *unsorted* column (Section 2.1's positions, Section 5's duplicate
  handling): an ``O(n)`` sortedness probe skips the sort outright,
  ``np.partition`` selects the order statistic in the regime where
  selection beats numpy's SIMD sort, and the sort is the fallback;
- :func:`separator_counts` — bucket counts, per-separator equal-value
  counts and extrema of a column against fixed separators, counting
  through run-boundary ``searchsorted`` diffs on the sorted column (the
  probe again skips the sort whenever the caller's column already is);
- :func:`merge_sorted` — the batched CVB increment step: fold a fresh
  sorted increment into the accumulated sorted sample;
- :func:`ensure_sorted` — sorted view used by the Δmax/f′ metrics, skipping
  the re-sort when the input is already ordered (the CVB accumulated
  sample always is);
- :func:`one_per_block_draws` — the per-block representative draws of the
  Section 4.2 validation twist, batched through one ``Generator.integers``
  call.

Every kernel has a ``scalar`` and a ``vector`` implementation registered in
:data:`KERNELS`; ``REPRO_KERNELS=scalar|vector`` (or the
:func:`use_kernels` override) selects which one runs.  The two
implementations are **bit-identical by contract**: same output arrays,
same dtypes on every code path callers compare, same exceptions on
degenerate input, and — for :func:`one_per_block_draws` — the same number
of draws consumed from the same RNG stream.  The differential harness in
``tests/kernels/`` enforces the contract on generated Zipf, Unif-Dup,
adversarial near-duplicate and degenerate datasets, and the bench baseline
gate (``repro bench --compare``) proves logical costs are mode-inert.

This module sits at the bottom of the stack on purpose: it imports nothing
but numpy and the exception types, so storage, sampling, core and engine
can all call in without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from ..exceptions import EmptyDataError, ParameterError

__all__ = [
    "KERNEL_MODES",
    "KERNELS",
    "kernel_mode",
    "kernel_names",
    "use_kernels",
    "vectorized",
    "gather_pages",
    "equi_height_separator_positions",
    "equi_height_separators_unsorted",
    "separator_counts",
    "eq_counts_sorted",
    "merge_sorted",
    "ensure_sorted",
    "one_per_block_draws",
]

#: The two implementation families selectable via ``$REPRO_KERNELS``.
KERNEL_MODES = ("scalar", "vector")

#: Environment variable naming the active implementation family.
ENV_VAR = "REPRO_KERNELS"

#: In-process override installed by :func:`use_kernels`; wins over the
#: environment so tests and the bench CLI can pin a mode without mutating
#: ``os.environ``.
_OVERRIDE: str | None = None


def kernel_mode() -> str:
    """The active kernel mode: override, else ``$REPRO_KERNELS``, else vector.

    The vectorized kernels are the default because they are proven
    bit-identical to the scalar twins by the differential harness; set
    ``REPRO_KERNELS=scalar`` to fall back to the reference implementations.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    mode = os.environ.get(ENV_VAR, "vector")
    if mode not in KERNEL_MODES:
        raise ParameterError(
            f"{ENV_VAR} must be one of {KERNEL_MODES}, got {mode!r}"
        )
    return mode


def vectorized() -> bool:
    """True when the vector kernel family is active."""
    return kernel_mode() == "vector"


@contextmanager
def use_kernels(mode: str) -> Iterator[None]:
    """Pin the kernel mode for a ``with`` block (reentrant, test-friendly).

    Overrides ``$REPRO_KERNELS`` without touching the process environment,
    and restores the previous override on exit — the differential harness
    runs every kernel pair under both modes this way.
    """
    global _OVERRIDE
    if mode not in KERNEL_MODES:
        raise ParameterError(
            f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}"
        )
    previous = _OVERRIDE
    _OVERRIDE = mode
    try:
        yield
    finally:
        _OVERRIDE = previous


#: name → ``{"scalar": impl, "vector": impl}``.  Populated by
#: :func:`_kernel`; the docs-sync test walks this registry, so every entry
#: must be described in docs/ARCHITECTURE.md.
KERNELS: dict[str, dict[str, Callable]] = {}


def kernel_names() -> list[str]:
    """Registered kernel-pair names, in registration order."""
    return list(KERNELS)


def _kernel(name: str, scalar: Callable, vector: Callable) -> None:
    """Register one scalar/vector implementation pair under *name*."""
    if name in KERNELS:
        raise ParameterError(f"duplicate kernel registration {name!r}")
    KERNELS[name] = {"scalar": scalar, "vector": vector}


def _impl(name: str) -> Callable:
    """The active implementation of kernel *name*."""
    return KERNELS[name][kernel_mode()]


# ----------------------------------------------------------------------
# gather_pages — batched page payload materialisation
# ----------------------------------------------------------------------


def _page_extents(
    page_ids: np.ndarray, blocking_factor: int, num_records: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-page half-open record ranges ``[lo, hi)`` for *page_ids*."""
    ids = np.asarray(page_ids, dtype=np.int64)
    lo = ids * blocking_factor
    hi = np.minimum(lo + blocking_factor, num_records)
    return lo, hi


def _gather_pages_scalar(
    values: np.ndarray, page_ids: np.ndarray, blocking_factor: int
) -> np.ndarray:
    """Reference: slice one page at a time and concatenate."""
    n = values.size
    chunks = []
    for pid in page_ids:
        lo = int(pid) * blocking_factor
        hi = min(lo + blocking_factor, n)
        chunks.append(values[lo:hi])
    if not chunks:
        return values[:0]
    return np.concatenate(chunks)


def _gather_pages_vector(
    values: np.ndarray, page_ids: np.ndarray, blocking_factor: int
) -> np.ndarray:
    """Batched: one fancy-index gather for the whole page set."""
    lo, hi = _page_extents(page_ids, blocking_factor, values.size)
    if lo.size == 0:
        return values[:0]
    sizes = hi - lo
    if sizes.min() == blocking_factor:
        # All pages full: a dense 2-D gather is one vectorised operation.
        index = lo[:, None] + np.arange(blocking_factor, dtype=np.int64)
        return values[index].reshape(-1)
    # General case (a short trailing page in the set): repeat each page's
    # base offset over its size and add the running intra-page rank.
    total = int(sizes.sum())
    starts = np.cumsum(sizes) - sizes
    index = np.repeat(lo - starts, sizes) + np.arange(total, dtype=np.int64)
    return values[index]


def gather_pages(
    values: np.ndarray, page_ids: np.ndarray, blocking_factor: int
) -> np.ndarray:
    """Concatenated payloads of *page_ids* over a page-ordered *values* array.

    Pure computation — no I/O accounting: callers charge reads themselves
    (see :meth:`~repro.storage.heapfile.HeapFile.read_pages`).  Page order
    is preserved and duplicate ids are gathered again, exactly like reading
    the pages one at a time.
    """
    return _impl("gather_pages")(values, page_ids, blocking_factor)


_kernel("gather_pages", _gather_pages_scalar, _gather_pages_vector)


# ----------------------------------------------------------------------
# Separator extraction from unsorted values
# ----------------------------------------------------------------------


def equi_height_separator_positions(m: int, k: int) -> np.ndarray:
    """0-based order-statistic positions of the ``k-1`` separators.

    Separator ``s_j`` is the value at (1-based) position ``ceil(j*m/k)``
    (Section 2.1); shared by both implementations and by
    :func:`repro.core.histogram.equi_height_separators`.
    """
    positions = np.ceil(np.arange(1, k) * m / k).astype(np.int64)
    return np.clip(positions - 1, 0, m - 1)


def _is_sorted(values: np.ndarray) -> bool:
    """``O(n)`` non-decreasing probe; NaNs fail it (comparisons are false)."""
    return values.size < 2 or bool(np.all(values[1:] >= values[:-1]))


def _check_separator_args(values: np.ndarray, k: int) -> None:
    """Shared validation so both implementations raise identically."""
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if values.size == 0:
        raise EmptyDataError("cannot build a histogram over an empty value set")


def _separators_unsorted_scalar(values: np.ndarray, k: int) -> np.ndarray:
    """Reference: full sort, then index the separator positions."""
    _check_separator_args(values, k)
    positions = equi_height_separator_positions(values.size, k)
    return np.sort(values)[positions]


def _separators_unsorted_vector(values: np.ndarray, k: int) -> np.ndarray:
    """Adaptive: probe, select, or sort — whichever is measured fastest.

    An ``O(n)`` sortedness probe reads the separators straight out of an
    already-ordered column.  For a single separator, ``np.partition``
    introselect beats a full sort.  Beyond that, numpy's SIMD-accelerated
    ``np.sort`` is empirically faster than multi-position introselect at
    every measured ``(n, k)``, so the sort *is* the vector kernel there.
    The selected order statistics are identical by definition on all three
    routes.
    """
    _check_separator_args(values, k)
    positions = equi_height_separator_positions(values.size, k)
    if positions.size == 0:
        return values[:0]
    if _is_sorted(values):
        return values[positions]
    if positions.size == 1:
        return np.partition(values, positions)[positions]
    return np.sort(values)[positions]


def equi_height_separators_unsorted(values: np.ndarray, k: int) -> np.ndarray:
    """The ``k-1`` equi-height separators of an **unsorted** value array.

    Same order statistics as
    :func:`repro.core.histogram.equi_height_separators` applied to
    ``np.sort(values)``, without requiring the caller to sort.
    """
    return _impl("separators_unsorted")(np.asarray(values), k)


_kernel(
    "separators_unsorted",
    _separators_unsorted_scalar,
    _separators_unsorted_vector,
)


# ----------------------------------------------------------------------
# Counting against fixed separators
# ----------------------------------------------------------------------


def eq_counts_sorted(
    sorted_values: np.ndarray, separators: np.ndarray
) -> np.ndarray:
    """Count of *sorted_values* equal to each separator; repeats carry zero.

    For a run of repeated separators only the first carries the equal count
    (the SQL Server EQ_ROWS convention, Section 5).  Shared helper: the
    scalar :func:`separator_counts` twin and the sorted-input histogram
    constructors both use it.
    """
    lo = np.searchsorted(sorted_values, separators, side="left")
    hi = np.searchsorted(sorted_values, separators, side="right")
    eq = (hi - lo).astype(np.int64)
    if separators.size > 1:
        repeat = np.concatenate(([False], separators[1:] == separators[:-1]))
        eq[repeat] = 0
    return eq


def _bucket_counts(values: np.ndarray, separators: np.ndarray) -> np.ndarray:
    """Bucket counts of *values* under the ``(s_{j-1}, s_j]`` convention."""
    k = separators.size + 1
    return np.bincount(
        np.searchsorted(separators, values, side="left"), minlength=k
    ).astype(np.int64)


def _separator_counts_scalar(
    values: np.ndarray, separators: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Reference: sort the column, then count through ``searchsorted``."""
    counts = _bucket_counts(values, separators)
    sorted_values = np.sort(values)
    eq = eq_counts_sorted(sorted_values, separators)
    return counts, eq, float(sorted_values[0]), float(sorted_values[-1])


def _separator_counts_vector(
    values: np.ndarray, separators: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Adaptive: count through run boundaries on the sorted column.

    The sortedness probe skips the sort whenever the caller's column is
    already ordered (the Figure 5/7 ground-truth recounts and the CVB
    accumulated sample always are), collapsing the whole kernel to
    ``O(k log n)``.  Otherwise one SIMD sort — measurably cheaper than the
    per-element ``searchsorted``-into-separators scan the scalar twin
    layers on top of its own sort — feeds the same boundary diffs.  Bucket
    ``j`` holds ``#(v <= s_j) - #(v <= s_{j-1})``, which is exactly the
    scalar twin's ``(s_{j-1}, s_j]`` bincount convention.
    """
    sorted_values = values if _is_sorted(values) else np.sort(values)
    upper = np.searchsorted(sorted_values, separators, side="right")
    bounds = np.concatenate(([0], upper, [sorted_values.size]))
    counts = np.diff(bounds).astype(np.int64)
    eq = eq_counts_sorted(sorted_values, separators)
    return counts, eq, float(sorted_values[0]), float(sorted_values[-1])


def separator_counts(
    values: np.ndarray, separators: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """``(bucket_counts, eq_counts, min, max)`` of unsorted *values*.

    The counting step of
    :meth:`~repro.core.histogram.EquiHeightHistogram.from_separators`:
    partition *values* by the (non-decreasing) *separators*, count the
    values exactly equal to each separator (first of a repeated run carries
    the count), and report the observed extrema.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise EmptyDataError("cannot count an empty value set")
    return _impl("separator_counts")(values, np.asarray(separators))


_kernel(
    "separator_counts", _separator_counts_scalar, _separator_counts_vector
)


# ----------------------------------------------------------------------
# merge_sorted — the batched CVB increment step
# ----------------------------------------------------------------------


def _merge_sorted_scalar(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference: stable sort of the concatenation (exploits the two runs)."""
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    return np.sort(np.concatenate([a, b]), kind="stable")


def _merge_sorted_vector(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched: scatter both runs to their final ranks in one pass.

    Element ``a[i]`` lands at rank ``searchsorted(b, a[i], left) + i`` and
    ``b[j]`` at ``searchsorted(a, b[j], right) + j``; the side choice puts
    ``a``'s copies of a tied value first, matching the stable sort of
    ``[a, b]``, and makes the two index sets disjoint.
    """
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    rank_a = np.searchsorted(b, a, side="left") + np.arange(
        a.size, dtype=np.int64
    )
    rank_b = np.searchsorted(a, b, side="right") + np.arange(
        b.size, dtype=np.int64
    )
    out[rank_a] = a
    out[rank_b] = b
    return out


def merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two **sorted** arrays into one sorted array.

    The CVB accumulation step (Section 7.1, extension 2): the accumulated
    sample and the fresh sorted increment merge without re-sorting the
    union.  When either side is empty the other is returned as-is.
    """
    return _impl("merge_sorted")(a, b)


_kernel("merge_sorted", _merge_sorted_scalar, _merge_sorted_vector)


# ----------------------------------------------------------------------
# ensure_sorted — sorted views for the error metrics
# ----------------------------------------------------------------------


def _ensure_sorted_scalar(values: np.ndarray) -> np.ndarray:
    """Reference: always sort (what the metrics historically did)."""
    return np.sort(values)


def _ensure_sorted_vector(values: np.ndarray) -> np.ndarray:
    """Batched: an ``O(n)`` sortedness probe skips the ``O(n log n)`` sort.

    The f′ metric re-validates the CVB accumulated sample every round, and
    that sample is maintained sorted — detecting this saves the dominant
    cost of the validation step.  NaNs make the probe fail (comparisons are
    false), falling back to the sort, so behaviour matches the scalar twin
    on every input.
    """
    if _is_sorted(values):
        return values
    return np.sort(values)


def ensure_sorted(values: np.ndarray) -> np.ndarray:
    """*values* in non-decreasing order (a copy only when sorting is needed).

    Callers must treat the result as read-only: the vector implementation
    returns the input itself when it is already sorted.
    """
    return _impl("ensure_sorted")(np.asarray(values))


_kernel("ensure_sorted", _ensure_sorted_scalar, _ensure_sorted_vector)


# ----------------------------------------------------------------------
# one_per_block_draws — decorrelated validation representatives
# ----------------------------------------------------------------------


def _one_per_block_scalar(
    generator: np.random.Generator, sizes: np.ndarray
) -> np.ndarray:
    """Reference: one ``integers`` call per block, in block order."""
    draws = [int(generator.integers(0, int(size))) for size in sizes]
    return np.asarray(draws, dtype=np.int64)


def _one_per_block_vector(
    generator: np.random.Generator, sizes: np.ndarray
) -> np.ndarray:
    """Batched: one ``integers`` call with a per-block bound array.

    numpy's ``Generator.integers`` consumes the bit stream element-wise, so
    the batched call draws exactly the same values in the same order as the
    scalar twin's loop — the differential harness pins this by comparing
    post-call generator states.
    """
    if sizes.size == 0:
        return np.zeros(0, dtype=np.int64)
    return generator.integers(0, sizes, dtype=np.int64)


def one_per_block_draws(
    generator: np.random.Generator, sizes: np.ndarray
) -> np.ndarray:
    """One uniform index draw per block, given the per-block tuple counts.

    Implements the random-representative selection of the Section 4.2
    cross-validation twist.  Every entry of *sizes* must be positive; the
    caller filters empty blocks (which draw nothing) beforehand.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size and sizes.min() <= 0:
        raise ParameterError("block sizes must be positive to draw from")
    return _impl("one_per_block")(generator, sizes)


_kernel("one_per_block", _one_per_block_scalar, _one_per_block_vector)
