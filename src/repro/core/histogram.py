"""Equi-height (equi-depth) k-histograms.

A *k-histogram* for a value set ``V`` over a totally ordered domain is a
partition of the domain into ``k`` intervals defined by separators
``s_1 <= s_2 <= ... <= s_{k-1}``; bucket ``B_j = {v : s_{j-1} < v <= s_j}``
with ``s_0 = -inf`` and ``s_k = +inf`` (Section 2.1 of the paper).  The
histogram is *equi-height* when every bucket holds ``n/k`` values.

:class:`EquiHeightHistogram` stores the separators together with the bucket
counts of whatever value set it was last counted against, plus the observed
min/max needed for range interpolation.  Instances are immutable; operations
that change the summarised data (``recount``) return new instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EmptyDataError, ParameterError
from . import kernels

__all__ = ["Bucket", "EquiHeightHistogram", "equi_height_separators"]


def _check_finite(values: np.ndarray) -> None:
    """Reject NaN/inf values: NaNs sort to the end and silently poison
    separators (NaN comparisons are all false, so monotonicity checks pass)."""
    if values.dtype.kind == "f" and not np.isfinite(values).all():
        raise ParameterError(
            "values contain NaN or infinity; clean the column before "
            "building statistics"
        )


def equi_height_separators(sorted_values: np.ndarray, k: int) -> np.ndarray:
    """The ``k-1`` equi-height separators of a **sorted** value array.

    Separator ``s_j`` is the value at (1-based) position ``ceil(j*m/k)``.
    Under the bucket convention ``B_j = (s_{j-1}, s_j]`` this gives every
    bucket exactly ``m/k`` values (up to rounding) when the values are
    duplicate-free.  With duplicates, adjacent separators may coincide
    (Section 5 of the paper).
    """
    values = np.asarray(sorted_values)
    m = values.size
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if m == 0:
        raise EmptyDataError("cannot build a histogram over an empty value set")
    positions = kernels.equi_height_separator_positions(m, k)
    return values[positions]


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket ``(lo, hi]`` with its count.

    ``lo`` is ``-inf`` for the first bucket and ``hi`` is ``+inf`` for the
    last; :meth:`EquiHeightHistogram.buckets` substitutes the observed
    min/max for interpolation-friendly finite bounds.
    """

    lo: float
    hi: float
    count: int

    @property
    def width(self) -> float:
        """Bucket width ``hi - lo``."""
        return self.hi - self.lo


class EquiHeightHistogram:
    """An approximate equi-height k-histogram.

    Parameters
    ----------
    separators:
        Non-decreasing array of ``k-1`` separator values.
    counts:
        Bucket counts of the value set this histogram summarises.
    min_value, max_value:
        Observed extrema of that value set (used for range interpolation).
    eq_counts:
        Optional per-separator counts of summarised values exactly equal to
        each separator (SQL Server's EQ_ROWS).  Range interpolation treats
        that mass as a point at the separator instead of smearing it across
        the bucket, which matters enormously for heavily duplicated data
        (Section 5).  For a run of repeated separators, only the first
        carries the equal count.  Defaults to zeros (pure interpolation).
    """

    def __init__(
        self,
        separators: np.ndarray,
        counts: np.ndarray,
        min_value: float,
        max_value: float,
        eq_counts: np.ndarray | None = None,
    ):
        separators = np.asarray(separators, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.int64)
        if separators.ndim != 1 or counts.ndim != 1:
            raise ParameterError("separators and counts must be one-dimensional")
        if counts.size != separators.size + 1:
            raise ParameterError(
                f"{counts.size} counts do not match {separators.size} separators "
                f"(need k = separators + 1)"
            )
        if separators.size and (np.diff(separators) < 0).any():
            raise ParameterError("separators must be non-decreasing")
        if (counts < 0).any():
            raise ParameterError("bucket counts must be non-negative")
        if min_value > max_value:
            raise ParameterError(
                f"min_value {min_value} exceeds max_value {max_value}"
            )
        if eq_counts is None:
            eq_counts = np.zeros(separators.size, dtype=np.int64)
        else:
            eq_counts = np.asarray(eq_counts, dtype=np.int64)
            if eq_counts.shape != separators.shape:
                raise ParameterError(
                    f"eq_counts shape {eq_counts.shape} does not match "
                    f"separators shape {separators.shape}"
                )
            if (eq_counts < 0).any():
                raise ParameterError("eq_counts must be non-negative")
        self._separators = separators
        self._separators.setflags(write=False)
        self._counts = counts
        self._counts.setflags(write=False)
        self._eq_counts = eq_counts
        self._eq_counts.setflags(write=False)
        self._min = float(min_value)
        self._max = float(max_value)

    @staticmethod
    def _eq_counts_sorted(
        sorted_values: np.ndarray, separators: np.ndarray
    ) -> np.ndarray:
        """Count of values equal to each separator; repeats carry zero."""
        return kernels.eq_counts_sorted(sorted_values, separators)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values: np.ndarray, k: int) -> "EquiHeightHistogram":
        """Histogram with equi-height separators computed from *values*.

        When *values* is the full column this is the *perfect* histogram;
        when it is a random sample this is the approximate histogram of
        Section 3.1 (separators at sample quantiles, counts of the sample).
        """
        values = np.asarray(values)
        if not kernels.vectorized():
            return cls.from_sorted_values(np.sort(values), k)
        # Vectorized path: ``ensure_sorted`` pays for at most one sort (and
        # none at all when the caller's values are already ordered — the CVB
        # accumulated sample and the ground-truth recounts always are),
        # then the separator and counting kernels ride their sorted fast
        # paths.  Validation order matches the scalar path (empty before k)
        # so both raise identically on degenerate input.
        if values.size == 0:
            raise EmptyDataError("cannot build a histogram over an empty value set")
        _check_finite(values)
        sorted_values = kernels.ensure_sorted(values)
        separators = kernels.equi_height_separators_unsorted(sorted_values, k)
        counts, eq_counts, vmin, vmax = kernels.separator_counts(
            sorted_values, separators
        )
        return cls(separators, counts, vmin, vmax, eq_counts=eq_counts)

    @classmethod
    def from_sorted_values(
        cls, sorted_values: np.ndarray, k: int
    ) -> "EquiHeightHistogram":
        """Same as :meth:`from_values` but skips the sort (caller's promise)."""
        values = np.asarray(sorted_values)
        if values.size == 0:
            raise EmptyDataError("cannot build a histogram over an empty value set")
        _check_finite(values)
        separators = equi_height_separators(values, k)
        counts = cls._count_sorted(values, separators, k)
        eq_counts = cls._eq_counts_sorted(values, separators)
        return cls(
            separators,
            counts,
            float(values[0]),
            float(values[-1]),
            eq_counts=eq_counts,
        )

    @classmethod
    def from_separators(
        cls, separators: np.ndarray, values: np.ndarray
    ) -> "EquiHeightHistogram":
        """Histogram with fixed *separators*, counted against *values*.

        This is the second step of the sampling methodology (Section 3.1):
        carry the sample-derived separators over to the full value set and
        observe the induced bucket sizes.
        """
        values = np.asarray(values)
        if values.size == 0:
            raise EmptyDataError("cannot count an empty value set")
        _check_finite(values)
        separators = np.asarray(separators, dtype=np.float64)
        counts, eq_counts, vmin, vmax = kernels.separator_counts(
            values, separators
        )
        return cls(separators, counts, vmin, vmax, eq_counts=eq_counts)

    @staticmethod
    def _count_sorted(
        sorted_values: np.ndarray, separators: np.ndarray, k: int
    ) -> np.ndarray:
        """Bucket counts of a sorted array, O(k log m)."""
        # Number of values <= s_j for each separator, then difference.
        upto = np.searchsorted(sorted_values, separators, side="right")
        edges = np.concatenate(([0], upto, [sorted_values.size]))
        return np.diff(edges).astype(np.int64)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of buckets."""
        return int(self._counts.size)

    @property
    def separators(self) -> np.ndarray:
        """The ``k-1`` separators (read-only view)."""
        return self._separators

    @property
    def counts(self) -> np.ndarray:
        """Bucket counts of the summarised value set (read-only view)."""
        return self._counts

    @property
    def eq_counts(self) -> np.ndarray:
        """Per-separator equal-to-boundary counts (read-only view)."""
        return self._eq_counts

    @property
    def total(self) -> int:
        """Total number of summarised values (``n`` or the sample size)."""
        return int(self._counts.sum())

    @property
    def min_value(self) -> float:
        """Smallest value the histogram covers."""
        return self._min

    @property
    def max_value(self) -> float:
        """Largest value the histogram covers."""
        return self._max

    @property
    def ideal_bucket_size(self) -> float:
        """``n/k`` — the bucket size of a perfect equi-height histogram."""
        return self.total / self.k

    def buckets(self) -> list[Bucket]:
        """Bucket objects with finite bounds (extrema replace +-inf)."""
        bounds = np.concatenate(
            ([self._min], self._separators, [self._max])
        )
        return [
            Bucket(float(bounds[j]), float(bounds[j + 1]), int(self._counts[j]))
            for j in range(self.k)
        ]

    # ------------------------------------------------------------------
    # Partitioning other value sets
    # ------------------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """0-based index of the bucket containing *value*."""
        return int(np.searchsorted(self._separators, value, side="left"))

    def count_values(self, values: np.ndarray) -> np.ndarray:
        """Bucket counts induced on *values* by this histogram's separators.

        This is the partitioning step of the cross-validation test
        (Definition 3): how does a fresh sample fall into the current
        buckets?
        """
        values = np.asarray(values)
        if values.size == 0:
            return np.zeros(self.k, dtype=np.int64)
        return np.bincount(
            np.searchsorted(self._separators, values, side="left"),
            minlength=self.k,
        ).astype(np.int64)

    def recount(self, values: np.ndarray) -> "EquiHeightHistogram":
        """New histogram: same separators, counts taken from *values*."""
        return EquiHeightHistogram.from_separators(self._separators, values)

    def cumulative_fraction(self, value: float) -> float:
        """Approximate fraction of summarised values ``<= value``.

        Exact at separator positions (bucket counts are exact there);
        linearly interpolated inside buckets.
        """
        return self.estimate_leq(value) / self.total

    def estimate_leq(self, value: float) -> float:
        """Estimated number of summarised values ``<= value``.

        Within the containing bucket, the mass known to sit exactly on the
        bucket's upper separator (``eq_counts``) is treated as a point; only
        the remaining range mass is linearly interpolated.  This is the
        SQL Server step-value convention, and it is what keeps range
        estimates sane when one hot value dominates a bucket (Section 5).
        """
        if value >= self._max:
            return float(self.total)
        if value < self._min:
            return 0.0
        bounds = np.concatenate(([self._min], self._separators, [self._max]))
        j = self.bucket_index(value)
        below = float(self._counts[:j].sum())
        lo, hi = float(bounds[j]), float(bounds[j + 1])
        bucket_count = float(self._counts[j])
        eq_at_hi = float(self._eq_counts[j]) if j < self.k - 1 else 0.0
        if value >= hi:
            # value equals the bucket's upper separator: whole bucket is <=.
            inside = bucket_count
        elif hi > lo:
            range_mass = max(0.0, bucket_count - eq_at_hi)
            inside = range_mass * (value - lo) / (hi - lo)
        else:
            inside = 0.0
        return below + inside

    def estimate_lt(self, value: float) -> float:
        """Estimated number of summarised values strictly ``< value``.

        Differs from :meth:`estimate_leq` only when *value* carries known
        point mass — i.e. when it coincides with a separator whose
        ``eq_counts`` entry is positive.  At other points the continuous
        interpolation cannot distinguish ``<`` from ``<=``.
        """
        if value > self._max:
            return float(self.total)
        if value <= self._min:
            return 0.0
        bounds = np.concatenate(([self._min], self._separators, [self._max]))
        j = self.bucket_index(value)
        below = float(self._counts[:j].sum())
        lo, hi = float(bounds[j]), float(bounds[j + 1])
        bucket_count = float(self._counts[j])
        eq_at_hi = float(self._eq_counts[j]) if j < self.k - 1 else 0.0
        range_mass = max(0.0, bucket_count - eq_at_hi)
        if value >= hi:
            # value sits exactly on the separator: everything in the bucket
            # except the separator's own point mass is strictly below.
            inside = range_mass
        elif hi > lo:
            inside = range_mass * (value - lo) / (hi - lo)
        else:
            inside = 0.0
        return below + inside

    def estimate_quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` of the summarised data.

        The inverse of :meth:`cumulative_fraction`: walk the buckets to the
        one holding the ``q``-th mass and interpolate linearly within it
        (point mass at the bucket's upper separator maps to the separator
        itself).  Histograms answer this for range partitioning and
        parallel-plan splitting, the other classic catalog use.
        """
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"q must be in [0, 1], got {q}")
        target = q * self.total
        bounds = np.concatenate(([self._min], self._separators, [self._max]))
        cumulative = 0.0
        for j in range(self.k):
            count = float(self._counts[j])
            if cumulative + count >= target or j == self.k - 1:
                lo, hi = float(bounds[j]), float(bounds[j + 1])
                if count <= 0 or hi <= lo:
                    return hi
                eq_at_hi = (
                    float(self._eq_counts[j]) if j < self.k - 1 else 0.0
                )
                range_mass = max(0.0, count - eq_at_hi)
                into_bucket = target - cumulative
                if into_bucket >= range_mass:
                    return hi  # lands in the separator's point mass
                if range_mass <= 0:
                    return hi
                return lo + (hi - lo) * into_bucket / range_mass
            cumulative += count
        return self._max

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated count of values in the closed range ``[lo, hi]``.

        Implements the standard strategy of Section 2.2: full buckets
        strictly inside the range count whole, boundary buckets are linearly
        interpolated under the uniform-within-bucket assumption.  Mass known
        to sit exactly on *lo* (a separator's ``eq_counts``) is included, so
        equality probes ``estimate_range(v, v)`` on hot values answer with
        the recorded point mass rather than zero.
        """
        if lo > hi:
            raise ParameterError(f"need lo <= hi, got [{lo}, {hi}]")
        return max(0.0, self.estimate_leq(hi) - self.estimate_lt(lo))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, EquiHeightHistogram):
            return NotImplemented
        return (
            np.array_equal(self._separators, other._separators)
            and np.array_equal(self._counts, other._counts)
            and np.array_equal(self._eq_counts, other._eq_counts)
            and self._min == other._min
            and self._max == other._max
        )

    def __repr__(self) -> str:
        return (
            f"EquiHeightHistogram(k={self.k}, total={self.total}, "
            f"range=[{self._min:g}, {self._max:g}])"
        )
