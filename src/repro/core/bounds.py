"""Analytical sampling bounds — the paper's Theorems 1, 3, 4, 5, 7 and
Corollary 1, plus the Gibbons-Matias-Poosala bound (Theorem 6) used as the
analytic baseline, and the distinct-value lower bound (Theorem 8).

Every bound is exposed in its "multi-functional" forms (Example 3): solve
for the sample size ``r``, the error fraction ``f``, or the bucket count
``k`` given the other parameters.  Sample sizes are returned as exact ceil'd
integers; error fractions as floats.

Notation (consistent with the paper):

- ``n``     relation size (number of tuples),
- ``k``     number of histogram buckets,
- ``delta`` absolute per-bucket deviation bound,
- ``f``     deviation as a fraction of the ideal bucket size ``n/k``
            (``delta = f*n/k``),
- ``gamma`` failure probability,
- ``r``     sample size (tuples),
- ``b``     blocking factor (tuples per disk page),
- ``t``     range-query output size in units of ``n/k`` (``s = t*n/k``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import InfeasibleBoundError, ParameterError

__all__ = [
    "theorem4_sample_size",
    "theorem4_error",
    "corollary1_sample_size",
    "corollary1_error_fraction",
    "corollary1_max_buckets",
    "theorem5_sample_size",
    "theorem5_separation",
    "theorem7_reject_sample_size",
    "theorem7_accept_sample_size",
    "cross_validation_sample_size",
    "theorem1_perfect_absolute_error",
    "theorem1_perfect_relative_error",
    "theorem1_avg_absolute_error",
    "theorem1_avg_relative_error",
    "theorem1_var_absolute_error",
    "theorem1_var_relative_error",
    "theorem3_absolute_error",
    "theorem3_relative_error",
    "GMPBound",
    "gmp_theorem6",
    "gmp_error_fraction",
    "gmp_required_c",
    "gmp_required_log_k",
    "gmp_required_k",
    "theorem8_error_lower_bound",
    "theorem8_sample_size_for_error",
    "without_replacement_sample_size",
    "effective_with_replacement_size",
    "initial_blocks",
]


def _check_positive(**params) -> None:
    for name, value in params.items():
        if value <= 0:
            raise ParameterError(f"{name} must be positive, got {value}")


def _check_gamma(gamma: float) -> None:
    if not 0 < gamma < 1:
        raise ParameterError(f"gamma must be in (0, 1), got {gamma}")


def _check_fraction(f: float) -> None:
    if not 0 < f <= 1:
        raise ParameterError(f"error fraction f must be in (0, 1], got {f}")


# ----------------------------------------------------------------------
# Theorem 4 / Corollary 1: delta-deviance
# ----------------------------------------------------------------------

def theorem4_sample_size(n: int, k: int, delta: float, gamma: float) -> int:
    """Sample size guaranteeing a δ-deviant k-histogram w.p. ``>= 1-gamma``.

    Theorem 4: ``r >= 4*n^2*ln(2n/gamma) / (k*delta^2)`` for ``delta <= n/k``.
    """
    _check_positive(n=n, k=k, delta=delta)
    _check_gamma(gamma)
    if delta > n / k:
        raise ParameterError(
            f"Theorem 4 assumes delta <= n/k; got delta={delta} > {n / k:g}"
        )
    r = 4.0 * n * n * math.log(2.0 * n / gamma) / (k * delta * delta)
    return math.ceil(r)


def theorem4_error(n: int, k: int, r: int, gamma: float) -> float:
    """The δ guaranteed by Theorem 4 for a sample of size *r*.

    ``delta >= sqrt(4*n^2*ln(2n/gamma) / (r*k))``.
    """
    _check_positive(n=n, k=k, r=r)
    _check_gamma(gamma)
    return math.sqrt(4.0 * n * n * math.log(2.0 * n / gamma) / (r * k))


def corollary1_sample_size(n: int, k: int, f: float, gamma: float) -> int:
    """Corollary 1: ``r >= 4*k*ln(2n/gamma) / f^2`` for ``delta = f*n/k``.

    Note the sample size is *independent of n* except through the logarithm —
    the paper's central practical observation.
    """
    _check_positive(n=n, k=k)
    _check_fraction(f)
    _check_gamma(gamma)
    return math.ceil(4.0 * k * math.log(2.0 * n / gamma) / (f * f))


def corollary1_error_fraction(n: int, k: int, r: int, gamma: float) -> float:
    """Corollary 1 solved for ``f``: the guaranteed fractional error of a
    sample of size *r* (Example 3, "Determining Histogram Error")."""
    _check_positive(n=n, k=k, r=r)
    _check_gamma(gamma)
    return math.sqrt(4.0 * k * math.log(2.0 * n / gamma) / r)


def corollary1_max_buckets(n: int, r: int, f: float, gamma: float) -> int:
    """Corollary 1 solved for ``k``: the largest histogram supportable by a
    sample of size *r* at fractional error *f* (Example 3, "Determining
    Histogram Size")."""
    _check_positive(n=n, r=r)
    _check_fraction(f)
    _check_gamma(gamma)
    k = r * f * f / (4.0 * math.log(2.0 * n / gamma))
    if k < 1:
        raise InfeasibleBoundError(
            f"sample of {r} cannot support even one bucket at f={f}, "
            f"gamma={gamma}, n={n}"
        )
    return math.floor(k)


# ----------------------------------------------------------------------
# Theorem 5: delta-separation
# ----------------------------------------------------------------------

def theorem5_sample_size(n: int, k: int, delta: float, gamma: float) -> int:
    """Sample size for δ-separation from the perfect histogram (Theorem 5):
    ``r >= 12*n^2*ln(2k/gamma) / delta^2``."""
    _check_positive(n=n, k=k, delta=delta)
    _check_gamma(gamma)
    if delta > n / k:
        raise ParameterError(
            f"Theorem 5 assumes delta <= n/k; got delta={delta} > {n / k:g}"
        )
    return math.ceil(12.0 * n * n * math.log(2.0 * k / gamma) / (delta * delta))


def theorem5_separation(n: int, k: int, r: int, gamma: float) -> float:
    """The δ-separation guaranteed by a sample of size *r* (Theorem 5)."""
    _check_positive(n=n, k=k, r=r)
    _check_gamma(gamma)
    return math.sqrt(12.0 * n * n * math.log(2.0 * k / gamma) / r)


# ----------------------------------------------------------------------
# Theorem 7: cross-validation sample sizes
# ----------------------------------------------------------------------

def theorem7_reject_sample_size(k: int, f: float, gamma: float) -> int:
    """Part 1 of Theorem 7: validation-sample size that exposes a *bad*
    histogram (deviation ``>= 2f*n/k``) with probability ``>= 1-gamma``:
    ``s >= 4*k*ln(1/gamma) / f^2``."""
    _check_positive(k=k)
    _check_fraction(f)
    _check_gamma(gamma)
    return math.ceil(4.0 * k * math.log(1.0 / gamma) / (f * f))


def theorem7_accept_sample_size(k: int, f: float, gamma: float) -> int:
    """Part 2 of Theorem 7: validation-sample size under which a *good*
    histogram (deviation ``<= f*n/(2k)``) passes with probability
    ``>= 1-gamma``: ``s >= 16*k*ln(k/gamma) / f^2``."""
    _check_positive(k=k)
    _check_fraction(f)
    _check_gamma(gamma)
    return math.ceil(16.0 * k * math.log(k / gamma) / (f * f))


def cross_validation_sample_size(k: int, f: float, gamma: float) -> int:
    """Validation-sample size satisfying both parts of Theorem 7."""
    return max(
        theorem7_reject_sample_size(k, f, gamma),
        theorem7_accept_sample_size(k, f, gamma),
    )


# ----------------------------------------------------------------------
# Theorems 1 and 3: range-query estimation error
# ----------------------------------------------------------------------

def theorem1_perfect_absolute_error(n: int, k: int) -> float:
    """Worst-case absolute range-estimation error of a *perfect* equi-height
    histogram: ``2n/k`` (Theorem 1, part 1)."""
    _check_positive(n=n, k=k)
    return 2.0 * n / k


def theorem1_perfect_relative_error(t: float) -> float:
    """Worst-case relative error of a perfect histogram on a query of output
    size ``t*n/k``: ``2/t`` (Theorem 1, part 1)."""
    _check_positive(t=t)
    return 2.0 / t


def theorem1_avg_absolute_error(n: int, k: int, f: float) -> float:
    """Worst case under an Δavg ``= f*n/k`` bound: ``(1 + f*k/4) * 2n/k``."""
    _check_positive(n=n, k=k, f=f)
    return (1.0 + f * k / 4.0) * 2.0 * n / k


def theorem1_avg_relative_error(k: int, f: float, t: float) -> float:
    """Relative-error counterpart: ``(1 + f*k/4) * 2/t``."""
    _check_positive(k=k, f=f, t=t)
    return (1.0 + f * k / 4.0) * 2.0 / t


def theorem1_var_absolute_error(n: int, k: int, f: float, t: float) -> float:
    """Worst case under a Δvar ``= f*n/k`` bound:
    ``(1 + f*sqrt(k*t/8)) * 2n/k``."""
    _check_positive(n=n, k=k, f=f, t=t)
    return (1.0 + f * math.sqrt(k * t / 8.0)) * 2.0 * n / k


def theorem1_var_relative_error(k: int, f: float, t: float) -> float:
    """Relative-error counterpart: ``(1 + f*sqrt(k*t/8)) * 2/t``."""
    _check_positive(k=k, f=f, t=t)
    return (1.0 + f * math.sqrt(k * t / 8.0)) * 2.0 / t


def theorem3_absolute_error(n: int, k: int, f: float) -> float:
    """Guarantee under a Δmax ``= f*n/k`` bound: ``alpha <= (1+f) * 2n/k``
    for *all* range queries (Theorem 3)."""
    _check_positive(n=n, k=k, f=f)
    return (1.0 + f) * 2.0 * n / k


def theorem3_relative_error(f: float, t: float) -> float:
    """Relative-error counterpart: ``beta <= (1+f) * 2/t`` (Theorem 3)."""
    _check_positive(f=f, t=t)
    return (1.0 + f) * 2.0 / t


# ----------------------------------------------------------------------
# Theorem 6: the Gibbons-Matias-Poosala baseline bound
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GMPBound:
    """The guarantee of GMP's Theorem 6 for parameters ``(k, c, n)``.

    Attributes
    ----------
    r:
        Required sample size ``c*k*ln^2(k)``.
    f:
        Guaranteed Δvar fraction ``(c*ln^2 k)^(-1/6)``.
    gamma:
        Failure probability ``k^(1-sqrt(c)) + n^(-1/3)``.
    n_min:
        The theorem needs ``n >= r^3`` (as evaluated in Example 4.2 of the
        paper); ``feasible`` reports whether the supplied *n* satisfies it.
    """

    k: int
    c: float
    n: int
    r: int
    f: float
    gamma: float
    n_min: int

    @property
    def feasible(self) -> bool:
        """True when the bound is satisfiable for this table size."""
        return self.n >= self.n_min and self.gamma < 1.0


def gmp_theorem6(k: int, c: float, n: int) -> GMPBound:
    """Evaluate Theorem 6 of Gibbons-Matias-Poosala for ``(k, c, n)``.

    Requires ``k >= 3`` and ``c >= 4`` as in the theorem statement.
    """
    if k < 3:
        raise ParameterError(f"Theorem 6 requires k >= 3, got {k}")
    if c < 4:
        raise ParameterError(f"Theorem 6 requires c >= 4, got {c}")
    _check_positive(n=n)
    log_k = math.log(k)
    r = math.ceil(c * k * log_k * log_k)
    f = (c * log_k * log_k) ** (-1.0 / 6.0)
    gamma = k ** (1.0 - math.sqrt(c)) + n ** (-1.0 / 3.0)
    n_min = r**3
    return GMPBound(k=k, c=c, n=n, r=r, f=f, gamma=gamma, n_min=n_min)


def gmp_error_fraction(k: int, c: float) -> float:
    """The Δvar fraction ``f = (c*ln^2 k)^(-1/6)`` promised by Theorem 6."""
    if k < 3:
        raise ParameterError(f"Theorem 6 requires k >= 3, got {k}")
    if c < 4:
        raise ParameterError(f"Theorem 6 requires c >= 4, got {c}")
    log_k = math.log(k)
    return (c * log_k * log_k) ** (-1.0 / 6.0)


def gmp_required_c(k: int, f: float) -> float:
    """The ``c`` Theorem 6 needs to promise fraction *f* at *k* buckets:
    ``c = f^(-6) / ln^2(k)``, floored at the theorem's minimum ``c = 4``.

    Large returned values are the point of the paper's Example 4.3: pushing
    ``f`` down through ``c`` blows up the sample size ``r = c*k*ln^2 k``
    (and the validity requirement ``n >= r^3``) sextically.
    """
    if k < 3:
        raise ParameterError(f"Theorem 6 requires k >= 3, got {k}")
    _check_fraction(f)
    log_k = math.log(k)
    return max(4.0, f ** (-6.0) / (log_k * log_k))


def gmp_required_log_k(f: float, c: float = 4.0) -> float:
    """``ln k`` needed by Theorem 6 to reach fraction *f* at fixed *c*:
    ``ln k = sqrt(f^(-6) / c)``.

    Returned as a logarithm because the paper's Example 4.4 values overflow
    floats: f = 0.1 at c = 4 needs ``k > e^500``.
    """
    _check_fraction(f)
    if c < 4:
        raise ParameterError(f"Theorem 6 requires c >= 4, got {c}")
    return math.sqrt(f ** (-6.0) / c)


def gmp_required_k(f: float, c: float = 4.0) -> float:
    """``k`` needed by Theorem 6 for fraction *f* at fixed *c* (may be
    ``inf`` when the exponent overflows — which is the paper's point)."""
    log_k = gmp_required_log_k(f, c)
    try:
        return math.exp(log_k)
    except OverflowError:
        return math.inf


# ----------------------------------------------------------------------
# Theorem 8: distinct-value estimation lower bound
# ----------------------------------------------------------------------

def theorem8_error_lower_bound(n: int, r: int, gamma: float) -> float:
    """No distinct-value estimator can beat ratio error
    ``sqrt(n*ln(1/gamma) / r)`` with probability ``1-gamma`` (Theorem 8).

    Valid for ``gamma > e^(-r)``.
    """
    _check_positive(n=n, r=r)
    _check_gamma(gamma)
    if gamma <= math.exp(-r):
        raise ParameterError(
            f"Theorem 8 requires gamma > e^-r; gamma={gamma} too small for r={r}"
        )
    return math.sqrt(n * math.log(1.0 / gamma) / r)


def theorem8_sample_size_for_error(n: int, error: float, gamma: float) -> int:
    """Sample size below which ratio error *error* is unachievable:
    Theorem 8 inverted, ``r = n*ln(1/gamma) / error^2``."""
    _check_positive(n=n, error=error)
    _check_gamma(gamma)
    if error <= 1.0:
        raise ParameterError(
            f"ratio error is always >= 1; got target {error}"
        )
    return math.ceil(n * math.log(1.0 / gamma) / (error * error))


# ----------------------------------------------------------------------
# Sampling without replacement
# ----------------------------------------------------------------------

def without_replacement_sample_size(r_with: int, n: int) -> int:
    """Sample size without replacement matching *r_with* draws with
    replacement.

    Section 3.1: the theorems are proved for sampling with replacement; the
    results "carry over" to sampling without replacement because the
    hypergeometric distribution concentrates at least as fast as the
    binomial.  The standard finite-population correction makes the
    equivalence quantitative: a without-replacement sample of size
    ``r / (1 + (r-1)/n)`` has the same estimator variance as ``r``
    with-replacement draws, so prescribing that (smaller) size is safe.
    """
    _check_positive(r_with=r_with, n=n)
    corrected = r_with / (1.0 + (r_with - 1.0) / n)
    return min(n, math.ceil(corrected))


def effective_with_replacement_size(r_without: int, n: int) -> float:
    """The with-replacement sample size a without-replacement sample of
    *r_without* is worth (the inverse of the finite-population correction:
    ``r / (1 - (r-1)/n)``, capped at infinity as r approaches n)."""
    _check_positive(r_without=r_without, n=n)
    if r_without > n:
        raise ParameterError(
            f"cannot draw {r_without} without replacement from {n}"
        )
    denominator = 1.0 - (r_without - 1.0) / n
    if denominator <= 0:
        return math.inf
    return r_without / denominator


# ----------------------------------------------------------------------
# Block-sampling helpers
# ----------------------------------------------------------------------

def initial_blocks(n: int, k: int, f: float, gamma: float, b: int) -> int:
    """Step 1 of the CVB algorithm: ``g_0 = r/b`` pages, with ``r`` from
    Corollary 1 (uncorrelated pages make one page worth ``b`` tuples)."""
    _check_positive(b=b)
    r = corollary1_sample_size(n, k, f, gamma)
    return max(1, math.ceil(r / b))
