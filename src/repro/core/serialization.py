"""Histogram (de)serialization and catalog-page budgeting.

SQL Server 7.0 stores a column's histogram inside a single 8 KB catalog
page — which is why the paper's experiments default to 600 bins for integer
columns (Section 7.1, implementation note 5).  This module provides:

- loss-free dict/JSON round-trips for every histogram type, so statistics
  can be persisted and shipped;
- :func:`max_bins_for_page`, the bins-per-catalog-page budget, reproducing
  the "600 bins" figure;
- :func:`fit_to_page`, which re-buckets a histogram that would overflow its
  catalog page.
"""

from __future__ import annotations

import json

import numpy as np

from ..exceptions import ParameterError
from .compressed import CompressedHistogram, SingletonBucket
from .equiwidth import EquiWidthHistogram
from .histogram import EquiHeightHistogram

__all__ = [
    "histogram_to_dict",
    "histogram_from_dict",
    "histogram_to_json",
    "histogram_from_json",
    "max_bins_for_page",
    "fit_to_page",
]

#: Catalog page geometry (matches the storage simulator's default page).
_PAGE_BYTES = 8192
_PAGE_HEADER = 96

#: Per-bin storage: separator value, bucket count, equal-to-boundary count,
#: plus one byte of per-step tagging/alignment.
_BYTES_PER_BIN = {"int32": 13, "int64": 21, "float64": 21}


def max_bins_for_page(value_type: str = "int32") -> int:
    """Histogram bins that fit one 8 KB catalog page.

    For 4-byte integer separators with 4-byte counts this reproduces the
    paper's figure of ~600 bins per page.
    """
    if value_type not in _BYTES_PER_BIN:
        raise ParameterError(
            f"value_type must be one of {sorted(_BYTES_PER_BIN)}, "
            f"got {value_type!r}"
        )
    return (_PAGE_BYTES - _PAGE_HEADER) // _BYTES_PER_BIN[value_type]


def fit_to_page(
    histogram: EquiHeightHistogram,
    sorted_values: np.ndarray,
    value_type: str = "int32",
) -> EquiHeightHistogram:
    """Re-bucket *histogram* so it fits one catalog page.

    Returns the histogram unchanged when it already fits; otherwise builds a
    fresh equi-height histogram over *sorted_values* (the sample the
    original summarised) at the page's bin budget.
    """
    budget = max_bins_for_page(value_type)
    if histogram.k <= budget:
        return histogram
    return EquiHeightHistogram.from_sorted_values(sorted_values, budget)


# ----------------------------------------------------------------------
# Dict round-trips
# ----------------------------------------------------------------------

def histogram_to_dict(histogram) -> dict:
    """Serialise any supported histogram to a JSON-safe dict."""
    if isinstance(histogram, EquiHeightHistogram):
        return {
            "type": "equi_height",
            "separators": histogram.separators.tolist(),
            "counts": histogram.counts.tolist(),
            "eq_counts": histogram.eq_counts.tolist(),
            "min_value": histogram.min_value,
            "max_value": histogram.max_value,
        }
    if isinstance(histogram, EquiWidthHistogram):
        return {
            "type": "equi_width",
            "edges": histogram.edges.tolist(),
            "counts": histogram.counts.tolist(),
        }
    if isinstance(histogram, CompressedHistogram):
        return {
            "type": "compressed",
            "singletons": [
                {"value": s.value, "count": s.count}
                for s in histogram.singletons
            ],
            "remainder": (
                histogram_to_dict(histogram.remainder)
                if histogram.remainder is not None
                else None
            ),
            "total": histogram.total,
        }
    raise ParameterError(
        f"cannot serialise histogram of type {type(histogram).__name__}"
    )


def histogram_from_dict(payload: dict):
    """Rebuild a histogram serialised by :func:`histogram_to_dict`."""
    if not isinstance(payload, dict) or "type" not in payload:
        raise ParameterError("payload is not a serialised histogram")
    kind = payload["type"]
    if kind == "equi_height":
        return EquiHeightHistogram(
            np.asarray(payload["separators"], dtype=np.float64),
            np.asarray(payload["counts"], dtype=np.int64),
            float(payload["min_value"]),
            float(payload["max_value"]),
            eq_counts=np.asarray(payload["eq_counts"], dtype=np.int64),
        )
    if kind == "equi_width":
        return EquiWidthHistogram(
            np.asarray(payload["edges"], dtype=np.float64),
            np.asarray(payload["counts"], dtype=np.int64),
        )
    if kind == "compressed":
        singletons = [
            SingletonBucket(float(s["value"]), int(s["count"]))
            for s in payload["singletons"]
        ]
        remainder = (
            histogram_from_dict(payload["remainder"])
            if payload["remainder"] is not None
            else None
        )
        return CompressedHistogram(
            singletons, remainder, total=int(payload["total"])
        )
    raise ParameterError(f"unknown serialised histogram type {kind!r}")


def histogram_to_json(histogram) -> str:
    """JSON string form of :func:`histogram_to_dict`."""
    return json.dumps(histogram_to_dict(histogram))


def histogram_from_json(text: str):
    """Inverse of :func:`histogram_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"invalid histogram JSON: {exc}") from exc
    return histogram_from_dict(payload)
