"""Error metrics for approximate equi-height histograms.

Implements every metric the paper defines or critiques:

- ``avg_error`` — Δavg, the mean absolute bucket-size deviation (Section 2.2).
- ``var_error`` — Δvar, the root-mean-square deviation (Section 2.2).
- ``max_error`` — Δmax, the paper's conservative metric (Definition 1); a
  histogram with ``max_error <= delta`` is *δ-deviant*.
- ``max_error_fraction`` — Δmax expressed as the fraction ``f`` of the ideal
  bucket size ``n/k`` (the form used throughout Sections 3-4 and all plots).
- ``relative_deviation`` — δ_S of Definition 3: the deviation a histogram's
  separators induce on a *different* value set ``S`` (the cross-validation
  statistic).
- ``separation_error`` — the per-bucket symmetric-difference metric of
  Definition 2 (Theorem 5's δ-separation).
- ``fractional_max_error`` — f′ of Definition 4, the duplicate-safe
  generalisation of ``f``.

All count-based metrics take a bucket-count vector; convenience wrappers
taking histograms are provided where the metric is defined between objects.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDataError, ParameterError
from . import kernels
from .histogram import EquiHeightHistogram

__all__ = [
    "avg_error",
    "var_error",
    "max_error",
    "max_error_fraction",
    "is_delta_deviant",
    "relative_deviation",
    "relative_deviation_fraction",
    "separation_error",
    "is_delta_separated",
    "fractional_max_error",
    "histogram_max_error_fraction",
]


def _normalise_counts(counts: np.ndarray) -> np.ndarray:
    """Validate a bucket-count vector, preserving integer exactness.

    Integer inputs stay int64: the historical blanket cast to float64
    silently lost precision for counts above ``2**53`` and let narrow
    integer dtypes (e.g. int32 counts at 20 M-row scale) overflow *before*
    the cast could help.  Sums and ideals are then computed in int64 and
    only the final ratios become floats.  Float inputs are kept (as
    float64) because fractional counts are legitimate for merged or scaled
    histograms.
    """
    counts = np.asarray(counts)
    if counts.ndim != 1 or counts.size == 0:
        raise ParameterError("counts must be a non-empty one-dimensional array")
    if counts.dtype.kind in "iu":
        if counts.dtype.kind == "u" and counts.max() > np.iinfo(np.int64).max:
            raise ParameterError(
                "bucket counts exceed the int64 range and cannot be "
                "normalised exactly"
            )
        counts = counts.astype(np.int64, copy=False)
    elif counts.dtype.kind == "f":
        counts = counts.astype(np.float64, copy=False)
    else:
        raise ParameterError(
            f"bucket counts must be numeric, got dtype {counts.dtype}"
        )
    if (counts < 0).any():
        raise ParameterError("bucket counts must be non-negative")
    return counts


def _ideal_bucket_size(counts: np.ndarray) -> float:
    """``n/k`` with the sum taken exactly.

    For integer counts the sum is accumulated in int64 and divided through
    Python's correctly rounded int/int division, so the ideal is exact to
    the last ulp even when ``n`` exceeds ``2**53`` (numpy would convert the
    sum to float64 *before* dividing and round it).  Below ``2**53`` both
    routes agree bit-for-bit, which keeps bench baselines stable.
    """
    if counts.dtype.kind == "i":
        return int(counts.sum()) / counts.size
    return counts.sum() / counts.size


def avg_error(counts: np.ndarray) -> float:
    """Δavg = sum_j |b_j - n/k| / k (Section 2.2)."""
    counts = _normalise_counts(counts)
    ideal = _ideal_bucket_size(counts)
    return float(np.abs(counts - ideal).mean())


def var_error(counts: np.ndarray) -> float:
    """Δvar = sqrt(sum_j |b_j - n/k|^2 / k) (Section 2.2)."""
    counts = _normalise_counts(counts)
    ideal = _ideal_bucket_size(counts)
    return float(np.sqrt(np.mean((counts - ideal) ** 2)))


def max_error(counts: np.ndarray) -> float:
    """Δmax = max_j |b_j - n/k| (Definition 1)."""
    counts = _normalise_counts(counts)
    ideal = _ideal_bucket_size(counts)
    return float(np.abs(counts - ideal).max())


def max_error_fraction(counts: np.ndarray) -> float:
    """Δmax as a fraction ``f`` of the ideal bucket size ``n/k``.

    This is the paper's headline quantity: ``f = Δmax / (n/k)``.
    """
    counts = _normalise_counts(counts)
    ideal = _ideal_bucket_size(counts)
    if ideal == 0:
        raise EmptyDataError("cannot compute a fractional error of zero tuples")
    return max_error(counts) / ideal


def is_delta_deviant(counts: np.ndarray, delta: float) -> bool:
    """True when the histogram is δ-deviant: every ``|b_j - n/k| <= delta``."""
    if delta < 0:
        raise ParameterError(f"delta must be non-negative, got {delta}")
    return max_error(counts) <= delta


def relative_deviation(
    histogram: EquiHeightHistogram, values: np.ndarray
) -> float:
    """δ_S of Definition 3: partition *values* by the histogram's separators
    and return ``max_j | |S_j| - |S|/k |``.

    This is the statistic the CVB algorithm thresholds against ``f*|S|/k``
    (Theorem 7) to decide whether the current histogram has converged.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise EmptyDataError("cannot compute a deviation over an empty sample")
    induced = histogram.count_values(values)
    ideal = values.size / histogram.k
    return float(np.abs(induced - ideal).max())


def relative_deviation_fraction(
    histogram: EquiHeightHistogram, values: np.ndarray
) -> float:
    """δ_S scaled by the sample's ideal bucket size ``|S|/k``."""
    values = np.asarray(values)
    if values.size == 0:
        raise EmptyDataError("cannot compute a deviation over an empty sample")
    return relative_deviation(histogram, values) * histogram.k / values.size


def separation_error(
    separators_a: np.ndarray,
    separators_b: np.ndarray,
    sorted_values: np.ndarray,
) -> float:
    """δ-separation (Definition 2): the largest per-bucket symmetric
    difference between the bucketings of *sorted_values* induced by the two
    separator sequences.

    Buckets pair up positionally (``B_j`` with ``B*_j``); the symmetric
    difference is computed through cumulative counts, so the whole metric
    costs ``O(k log n)``.
    """
    separators_a = np.asarray(separators_a, dtype=np.float64)
    separators_b = np.asarray(separators_b, dtype=np.float64)
    if separators_a.size != separators_b.size:
        raise ParameterError(
            "histograms must have the same number of buckets to be compared "
            f"({separators_a.size + 1} vs {separators_b.size + 1})"
        )
    sorted_values = np.asarray(sorted_values)
    if sorted_values.size == 0:
        raise EmptyDataError("cannot compare bucketings of an empty value set")

    inf = np.inf
    bounds_a = np.concatenate(([-inf], separators_a, [inf]))
    bounds_b = np.concatenate(([-inf], separators_b, [inf]))

    def cumulative(x: np.ndarray) -> np.ndarray:
        # Number of values <= each bound; infinities handled by searchsorted.
        return np.searchsorted(sorted_values, x, side="right").astype(np.float64)

    cum_a = cumulative(bounds_a)
    cum_b = cumulative(bounds_b)
    size_a = np.diff(cum_a)
    size_b = np.diff(cum_b)
    inter_hi = cumulative(np.minimum(bounds_a[1:], bounds_b[1:]))
    inter_lo = cumulative(np.maximum(bounds_a[:-1], bounds_b[:-1]))
    intersection = np.maximum(0.0, inter_hi - inter_lo)
    sym_diff = size_a + size_b - 2.0 * intersection
    return float(sym_diff.max())


def is_delta_separated(
    separators_a: np.ndarray,
    separators_b: np.ndarray,
    sorted_values: np.ndarray,
    delta: float,
) -> bool:
    """True when the two bucketings are δ-separated (Definition 2)."""
    if delta < 0:
        raise ParameterError(f"delta must be non-negative, got {delta}")
    return separation_error(separators_a, separators_b, sorted_values) <= delta


def fractional_max_error(
    separators: np.ndarray,
    reference_values: np.ndarray,
    observed_values: np.ndarray,
) -> float:
    """f′ of Definition 4 — the duplicate-safe max error.

    With heavy duplicates, adjacent separators coincide and per-bucket counts
    become ill-defined; Definition 4 instead compares, for each *distinct*
    separator range, the fraction of the *reference* values falling in that
    range (``f_{j+1} - f_j``, computed on the sample that produced the
    separators) against the fraction of the *observed* values in the same
    range (``p_{j+1} - p_j``), normalised by the reference fraction.

    The ranges are delimited by the distinct separator values
    ``d_1 < ... < d_m`` extended with ``d_0 = -inf`` and ``d_{m+1} = +inf``,
    so the full domain is covered.  Ranges in which the reference holds no
    values are skipped (the metric is undefined there, and such ranges carry
    no histogram information).

    Parameters
    ----------
    separators:
        The histogram's separators (duplicates allowed).
    reference_values:
        The value multiset that induced the separators (the accumulated
        sample ``R`` in CVB).
    observed_values:
        The value multiset being checked against the histogram (the fresh
        increment ``R_i``, or the full data for ground-truth evaluation).
    """
    separators = np.asarray(separators, dtype=np.float64)
    # ensure_sorted skips the O(n log n) sort when the input is already
    # ordered — the CVB accumulated sample always is, which makes this the
    # dominant saving of the validation step.
    reference = kernels.ensure_sorted(
        np.asarray(reference_values, dtype=np.float64)
    )
    observed = kernels.ensure_sorted(
        np.asarray(observed_values, dtype=np.float64)
    )
    if reference.size == 0 or observed.size == 0:
        raise EmptyDataError("fractional max error needs non-empty value sets")

    distinct = np.unique(separators)

    def fractions_leq(sorted_vals: np.ndarray) -> np.ndarray:
        counts = np.searchsorted(sorted_vals, distinct, side="right")
        fracs = counts / sorted_vals.size
        return np.concatenate(([0.0], fracs, [1.0]))

    f = fractions_leq(reference)
    p = fractions_leq(observed)
    f_ranges = np.diff(f)
    p_ranges = np.diff(p)
    populated = f_ranges > 0
    if not populated.any():
        raise EmptyDataError(
            "reference values place no mass in any separator range"
        )
    errors = np.abs(f_ranges[populated] - p_ranges[populated]) / f_ranges[populated]
    return float(errors.max())


def histogram_max_error_fraction(
    approx: EquiHeightHistogram, sorted_values: np.ndarray
) -> float:
    """End-to-end quality of *approx* against the full (sorted) data.

    Applies the approximate histogram's separators to the data and returns
    the resulting Δmax as a fraction of ``n/k`` — the quantity plotted on the
    y-axis of Figures 5 and 7.
    """
    counted = approx.recount(sorted_values)
    return max_error_fraction(counted.counts)
