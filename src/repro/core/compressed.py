"""Compressed histograms — the Section 5 extension.

A compressed histogram separates values whose multiplicity exceeds the ideal
bucket size ``n/k`` into dedicated *singleton* buckets (value, exact count)
and builds an equi-height histogram over the remaining values with the
remaining buckets.  This sidesteps the duplicated-separator problem of plain
equi-height histograms under heavy skew: the hot values are represented
exactly, and the residual distribution is mild enough for Definition 1's max
error to be well-defined again.

The paper defers compressed histograms to the full version; the structure
follows the standard construction of Poosala et al. [26] that the paper
references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EmptyDataError, ParameterError
from .histogram import EquiHeightHistogram

__all__ = ["SingletonBucket", "CompressedHistogram"]


@dataclass(frozen=True)
class SingletonBucket:
    """An exactly counted high-frequency value."""

    value: float
    count: int


class CompressedHistogram:
    """High-frequency singletons plus an equi-height remainder.

    Build with :meth:`from_values`; ``k`` counts total buckets, singleton and
    equi-height alike, so a compressed histogram occupies the same catalog
    budget as a plain k-histogram.
    """

    def __init__(
        self,
        singletons: list[SingletonBucket],
        remainder: EquiHeightHistogram | None,
        total: int,
    ):
        if total < 0:
            raise ParameterError(f"total must be non-negative, got {total}")
        accounted = sum(s.count for s in singletons)
        if remainder is not None:
            accounted += remainder.total
        if accounted != total:
            raise ParameterError(
                f"bucket contents ({accounted}) do not sum to total ({total})"
            )
        self._singletons = sorted(singletons, key=lambda s: s.value)
        self._remainder = remainder
        self._total = int(total)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(
        cls, values: np.ndarray, k: int, threshold_factor: float = 1.0
    ) -> "CompressedHistogram":
        """Build a compressed k-histogram for *values*.

        A value becomes a singleton bucket when its multiplicity exceeds
        ``threshold_factor * n/k``.  At most ``k-1`` singletons are kept
        (most frequent first) so at least one bucket remains for the
        residual equi-height histogram whenever residual values exist.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if threshold_factor <= 0:
            raise ParameterError(
                f"threshold_factor must be positive, got {threshold_factor}"
            )
        values = np.sort(np.asarray(values))
        n = values.size
        if n == 0:
            raise EmptyDataError("cannot build a histogram over an empty value set")

        distinct, counts = np.unique(values, return_counts=True)
        threshold = threshold_factor * n / k
        hot_mask = counts > threshold
        hot_order = np.argsort(-counts[hot_mask], kind="stable")
        hot_values = distinct[hot_mask][hot_order][: k - 1]
        hot_counts = counts[hot_mask][hot_order][: k - 1]

        singletons = [
            SingletonBucket(float(v), int(c))
            for v, c in zip(hot_values, hot_counts)
        ]

        residual_mask = ~np.isin(values, hot_values)
        residual = values[residual_mask]
        remainder_buckets = k - len(singletons)
        if residual.size and remainder_buckets > 0:
            remainder = EquiHeightHistogram.from_sorted_values(
                residual, remainder_buckets
            )
        else:
            remainder = None
        return cls(singletons, remainder, total=n)

    @classmethod
    def from_sample(
        cls,
        sample: np.ndarray,
        n: int,
        k: int,
        threshold_factor: float = 1.0,
    ) -> "CompressedHistogram":
        """Approximate compressed histogram from a random sample.

        Singleton counts are scaled up by ``n / |sample|`` so range estimates
        refer to the full relation.
        """
        sample = np.asarray(sample)
        if sample.size == 0:
            raise EmptyDataError("cannot build a histogram from an empty sample")
        if n < sample.size:
            raise ParameterError(
                f"n={n} smaller than the sample ({sample.size})"
            )
        base = cls.from_values(sample, k, threshold_factor)
        scale = n / sample.size
        singletons = [
            SingletonBucket(s.value, int(round(s.count * scale)))
            for s in base._singletons
        ]
        remainder = base._remainder
        if remainder is not None:
            scaled_counts = np.round(remainder.counts * scale).astype(np.int64)
            scaled_eq = np.round(remainder.eq_counts * scale).astype(np.int64)
            remainder = EquiHeightHistogram(
                remainder.separators,
                scaled_counts,
                remainder.min_value,
                remainder.max_value,
                eq_counts=np.minimum(scaled_eq, scaled_counts[:-1]),
            )
        total = sum(s.count for s in singletons)
        if remainder is not None:
            total += remainder.total
        return cls(singletons, remainder, total=total)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def singletons(self) -> list[SingletonBucket]:
        """The high-frequency buckets, sorted by value."""
        return list(self._singletons)

    @property
    def remainder(self) -> EquiHeightHistogram | None:
        """The equi-height histogram over non-singleton values."""
        return self._remainder

    @property
    def total(self) -> int:
        """Total number of summarised tuples."""
        return self._total

    @property
    def k(self) -> int:
        """Total bucket budget consumed."""
        remainder_k = self._remainder.k if self._remainder is not None else 0
        return len(self._singletons) + remainder_k

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated count of values in ``[lo, hi]``.

        Singletons inside the range contribute their exact counts; the
        remainder histogram contributes its interpolated estimate.
        """
        if lo > hi:
            raise ParameterError(f"need lo <= hi, got [{lo}, {hi}]")
        estimate = sum(
            s.count for s in self._singletons if lo <= s.value <= hi
        )
        if self._remainder is not None:
            estimate += self._remainder.estimate_range(lo, hi)
        return float(estimate)

    def estimate_equality(self, value: float) -> float:
        """Estimated count of tuples equal to *value*.

        Exact for singleton values; otherwise the remainder bucket's count
        spread uniformly over the distinct values it is assumed to hold.
        """
        for s in self._singletons:
            if s.value == value:
                return float(s.count)
        if self._remainder is None:
            return 0.0
        j = self._remainder.bucket_index(value)
        buckets = self._remainder.buckets()
        bucket = buckets[j]
        width = max(bucket.width, 1.0)
        return bucket.count / width

    def __repr__(self) -> str:
        return (
            f"CompressedHistogram(singletons={len(self._singletons)}, "
            f"remainder_k={self._remainder.k if self._remainder else 0}, "
            f"total={self._total})"
        )
