"""Core contribution: equi-height histograms, error metrics, sampling
bounds, and the CVB adaptive block-sampling algorithm."""

from . import bounds, kernels
from .adaptive import CVBConfig, CVBIteration, CVBResult, CVBSampler, cvb_build
from .compressed import CompressedHistogram, SingletonBucket
from .equiwidth import EquiWidthHistogram
from .maxdiff import MaxDiffBucket, MaxDiffHistogram
from .merge import merge_equi_height
from .serialization import (
    fit_to_page,
    histogram_from_dict,
    histogram_from_json,
    histogram_to_dict,
    histogram_to_json,
    max_bins_for_page,
)
from .error_metrics import (
    avg_error,
    fractional_max_error,
    histogram_max_error_fraction,
    is_delta_deviant,
    is_delta_separated,
    max_error,
    max_error_fraction,
    relative_deviation,
    relative_deviation_fraction,
    separation_error,
    var_error,
)
from .histogram import Bucket, EquiHeightHistogram, equi_height_separators

__all__ = [
    "bounds",
    "kernels",
    "CVBConfig",
    "CVBIteration",
    "CVBResult",
    "CVBSampler",
    "cvb_build",
    "CompressedHistogram",
    "SingletonBucket",
    "EquiWidthHistogram",
    "MaxDiffBucket",
    "MaxDiffHistogram",
    "merge_equi_height",
    "fit_to_page",
    "histogram_from_dict",
    "histogram_from_json",
    "histogram_to_dict",
    "histogram_to_json",
    "max_bins_for_page",
    "avg_error",
    "fractional_max_error",
    "histogram_max_error_fraction",
    "is_delta_deviant",
    "is_delta_separated",
    "max_error",
    "max_error_fraction",
    "relative_deviation",
    "relative_deviation_fraction",
    "separation_error",
    "var_error",
    "Bucket",
    "EquiHeightHistogram",
    "equi_height_separators",
]
