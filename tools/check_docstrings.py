#!/usr/bin/env python
"""Docstring-coverage lint — thin shim over ``repro.lint`` rule DOC001.

The original standalone checker moved into the unified static-analysis
layer (:mod:`repro.lint.docrules`); this wrapper keeps the historical CLI
contract for scripts and CI that still call it directly:

    python tools/check_docstrings.py

Exit status is the number of violations (0 = clean), capped at 125.
Exemptions are inline ``# repro: noqa[DOC001]`` comments on the offending
line, not a central allowlist.  Prefer ``python -m repro lint`` for the
full rule set.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import lint  # noqa: E402  (path set up above)


def main() -> int:
    """Run DOC001 over the repo; print findings, return their count."""
    report = lint.run_lint(root=ROOT, rules=["DOC001"])
    for finding in report.findings:
        print(f"{finding.path}:{finding.line}: {finding.message}")
    if report.findings:
        print(
            f"\n{len(report.findings)} undocumented public name(s) across "
            f"{report.files} file(s); add docstrings or suppress inline "
            f"with `# repro: noqa[DOC001]`"
        )
    else:
        print(f"docstring coverage OK ({report.files} files)")
    return min(len(report.findings), 125)


if __name__ == "__main__":
    sys.exit(main())
