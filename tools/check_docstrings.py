#!/usr/bin/env python
"""Docstring-coverage lint for the public surface of src/repro.

Walks every module under ``src/repro`` with :mod:`ast` (no imports, so it
is fast and side-effect free) and requires a docstring on:

- every module,
- every public class and public method (name not starting with ``_``,
  ``__init__`` exempt — the class docstring covers construction),
- every public module-level function.

Functions nested inside other functions are ignored.  Known-irrelevant
names can be exempted in :data:`ALLOWLIST` as ``"relative/path.py"`` (whole
file) or ``"relative/path.py::Qual.name"``.

Exit status is the number of violations (0 = clean), so CI can gate on it:

    python tools/check_docstrings.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
PACKAGE = ROOT / "src" / "repro"

#: ``path`` or ``path::qualname`` entries exempt from the docstring rule.
ALLOWLIST: set[str] = {
    # Dataclass-generated containers whose fields the class docstring covers.
    "experiments/reporting.py::Series.add",
}


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node) -> bool:
    return ast.get_docstring(node) is not None


def _walk_functions(body, prefix: str):
    """Yield (qualname, node) for public defs/classes in *body*, one level
    into classes but not into function bodies."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield f"{prefix}{node.name}", node
        elif isinstance(node, ast.ClassDef):
            if _is_public(node.name):
                yield f"{prefix}{node.name}", node
                yield from _walk_functions(
                    node.body, f"{prefix}{node.name}."
                )


def check_file(path: pathlib.Path) -> list[str]:
    rel = path.relative_to(PACKAGE).as_posix()
    if rel in ALLOWLIST:
        return []
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    if not _has_docstring(tree):
        violations.append(f"{rel}: module has no docstring")
    for qualname, node in _walk_functions(tree.body, ""):
        if f"{rel}::{qualname}" in ALLOWLIST:
            continue
        if not _has_docstring(node):
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            violations.append(
                f"{rel}::{qualname}: public {kind} has no docstring "
                f"(line {node.lineno})"
            )
    return violations


def main() -> int:
    files = sorted(PACKAGE.rglob("*.py"))
    if not files:
        print(f"error: no python files under {PACKAGE}", file=sys.stderr)
        return 1
    violations = []
    for path in files:
        violations.extend(check_file(path))
    for violation in violations:
        print(violation)
    checked = len(files)
    if violations:
        print(
            f"\n{len(violations)} undocumented public name(s) across "
            f"{checked} file(s); add docstrings or extend ALLOWLIST in "
            f"tools/check_docstrings.py"
        )
    else:
        print(f"docstring coverage OK ({checked} files)")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main())
