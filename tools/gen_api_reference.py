#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every public module of :mod:`repro` grouped by subpackage, collects
the signatures and first docstring paragraphs of everything in ``__all__``,
and renders one Markdown reference with a table of contents.  Regenerate
after API changes:

    python tools/gen_api_reference.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: (section title, blurb, modules) — one section per subpackage, in
#: dependency order (storage at the bottom of the stack, CLI at the top).
SECTIONS = [
    (
        "Package root",
        "Top-level re-exports and shared infrastructure.",
        ["repro", "repro.exceptions"],
    ),
    (
        "repro.storage — simulated disk",
        "Heap files, pages, layouts, I/O accounting and fault injection.",
        [
            "repro.storage.heapfile",
            "repro.storage.layout",
            "repro.storage.page",
            "repro.storage.record",
            "repro.storage.iostats",
            "repro.storage.faults",
        ],
    ),
    (
        "repro.sampling — record- and block-level samplers",
        "The two sampling regimes of Sections 3-4, plus step schedules.",
        [
            "repro.sampling.record_sampler",
            "repro.sampling.block_sampler",
            "repro.sampling.page_samplers",
            "repro.sampling.schedule",
            "repro.sampling.design_effect",
        ],
    ),
    (
        "repro.core — histograms, bounds, the adaptive algorithm",
        "Equi-height histograms, error metrics, Corollary 1 bounds and the "
        "cross-validation-based (CVB) adaptive build.",
        [
            "repro.core.kernels",
            "repro.core.histogram",
            "repro.core.error_metrics",
            "repro.core.bounds",
            "repro.core.adaptive",
            "repro.core.compressed",
            "repro.core.equiwidth",
            "repro.core.maxdiff",
            "repro.core.merge",
            "repro.core.serialization",
        ],
    ),
    (
        "repro.workloads — synthetic data and queries",
        "The paper's Zipfian datasets and range-query workloads.",
        [
            "repro.workloads.zipf",
            "repro.workloads.distributions",
            "repro.workloads.datasets",
            "repro.workloads.queries",
        ],
    ),
    (
        "repro.distinct — distinct-value estimation",
        "Section 6: frequency profiles and the GEE family of estimators.",
        [
            "repro.distinct.frequency",
            "repro.distinct.estimators",
            "repro.distinct.bounds",
            "repro.distinct.metrics",
        ],
    ),
    (
        "repro.engine — the SQL Server-shaped surface",
        "Tables, ANALYZE, selectivity estimation, staleness policy and "
        "degraded-mode resilience.",
        [
            "repro.engine.table",
            "repro.engine.statistics",
            "repro.engine.catalog",
            "repro.engine.density",
            "repro.engine.selectivity",
            "repro.engine.joins",
            "repro.engine.maintenance",
            "repro.engine.resilience",
            "repro.engine.serialization",
        ],
    ),
    (
        "repro.baselines — prior-work comparators",
        "GMP incremental maintenance and the PSC sampling baseline.",
        ["repro.baselines.gmp", "repro.baselines.psc"],
    ),
    (
        "repro.experiments — figures, sweeps, the trial engine",
        "Deterministic Monte-Carlo infrastructure and the paper's figures.",
        [
            "repro.experiments.config",
            "repro.experiments.parallel",
            "repro.experiments.runner",
            "repro.experiments.figures",
            "repro.experiments.reporting",
            "repro.experiments.chaos",
        ],
    ),
    (
        "repro.durability — crash-safe persistence",
        "Atomic writes, CRC-framed journals, the durable statistics "
        "catalog, resumable run checkpoints and the process-kill chaos "
        "harness; see docs/DURABILITY.md for formats and guarantees.",
        [
            "repro.durability.atomic",
            "repro.durability.journal",
            "repro.durability.catalog_store",
            "repro.durability.runjournal",
            "repro.durability.chaos",
        ],
    ),
    (
        "repro.serve — the statistics server",
        "Multi-tenant ANALYZE/estimate serving: request protocol, LRU "
        "serving cache, admission control, the O(log k) bucket index and "
        "the deterministic load generator; see docs/SERVING.md.",
        [
            "repro.serve.protocol",
            "repro.serve.bucket_index",
            "repro.serve.cache",
            "repro.serve.admission",
            "repro.serve.server",
            "repro.serve.telemetry",
            "repro.serve.monitor",
            "repro.serve.loadgen",
        ],
    ),
    (
        "repro.obs — observability",
        "Metrics registry, trace spans, exporters, the deterministic "
        "benchmark harness and the live-telemetry primitives; see "
        "docs/OBSERVABILITY.md for the full catalog and docs/TELEMETRY.md "
        "for the streaming sketch semantics.",
        [
            "repro.obs.catalog",
            "repro.obs.metrics",
            "repro.obs.trace",
            "repro.obs.bench",
            "repro.obs.live.sketch",
            "repro.obs.live.window",
            "repro.obs.live.slo",
        ],
    ),
    (
        "repro.lint — static analysis",
        "The determinism/invariant lint engine, its per-module and "
        "whole-program (flow) rule sets, the project symbol table and "
        "call graph, and report/baseline handling; see docs/LINTING.md "
        "for the rule catalog.",
        [
            "repro.lint.engine",
            "repro.lint.symbols",
            "repro.lint.callgraph",
            "repro.lint.rules",
            "repro.lint.docrules",
            "repro.lint.flowrules",
            "repro.lint.report",
        ],
    ),
    (
        "Command line",
        "`python -m repro` subcommands.",
        ["repro.cli"],
    ),
]

MODULES = [module for _, _, modules in SECTIONS for module in modules]


def first_paragraph(doc: str | None) -> str:
    if not doc:
        return "*(undocumented)*"
    paragraph = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a Markdown heading."""
    text = heading.lower().replace(" ", "-")
    return re.sub(r"[^a-z0-9_\-]", "", text)


def render_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    lines = [f"### `{module_name}`", ""]
    lines.append(first_paragraph(module.__doc__))
    lines.append("")
    names = [n for n in getattr(module, "__all__", []) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or inspect.ismodule(obj):
            continue
        if inspect.isclass(obj):
            lines.append(f"#### class `{name}`")
            lines.append("")
            lines.append(first_paragraph(obj.__doc__))
            lines.append("")
            methods = [
                (m_name, m)
                for m_name, m in inspect.getmembers(obj)
                if not m_name.startswith("_")
                and (inspect.isfunction(m) or inspect.ismethod(m))
                and m.__qualname__.startswith(obj.__name__ + ".")
            ]
            for m_name, m in methods:
                lines.append(f"- `{m_name}{signature_of(m)}` — "
                             f"{first_paragraph(m.__doc__)}")
            if methods:
                lines.append("")
        elif callable(obj):
            lines.append(f"#### `{name}{signature_of(obj)}`")
            lines.append("")
            lines.append(first_paragraph(obj.__doc__))
            lines.append("")
        else:
            lines.append(f"#### data `{name}`")
            lines.append("")
            lines.append(f"`{obj!r}`"[:300])
            lines.append("")
    return lines


def main() -> None:
    out = [
        "# API reference",
        "",
        "Auto-generated from docstrings by `tools/gen_api_reference.py`; "
        "do not edit by hand.",
        "",
        "## Contents",
        "",
    ]
    for title, _, modules in SECTIONS:
        out.append(f"- [{title}](#{github_anchor(title)})")
        for module in modules:
            out.append(f"  - [`{module}`](#{github_anchor(f'`{module}`')})")
    out.append("")
    for title, blurb, modules in SECTIONS:
        out.append(f"## {title}")
        out.append("")
        out.append(blurb)
        out.append("")
        for module in modules:
            out.extend(render_module(module))
    target = ROOT / "docs" / "API.md"
    target.parent.mkdir(exist_ok=True)
    target.write_text("\n".join(out) + "\n")
    print(f"wrote {target} ({len(out)} lines)")


if __name__ == "__main__":
    main()
