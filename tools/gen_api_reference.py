#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every public module of :mod:`repro`, collects the signatures and
first docstring paragraphs of everything in ``__all__``, and renders one
Markdown reference.  Regenerate after API changes:

    python tools/gen_api_reference.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

MODULES = [
    "repro",
    "repro.core.histogram",
    "repro.core.error_metrics",
    "repro.core.bounds",
    "repro.core.adaptive",
    "repro.core.compressed",
    "repro.core.equiwidth",
    "repro.core.maxdiff",
    "repro.core.merge",
    "repro.core.serialization",
    "repro.sampling.record_sampler",
    "repro.sampling.block_sampler",
    "repro.sampling.page_samplers",
    "repro.sampling.schedule",
    "repro.sampling.design_effect",
    "repro.storage.heapfile",
    "repro.storage.layout",
    "repro.storage.page",
    "repro.storage.record",
    "repro.storage.iostats",
    "repro.workloads.zipf",
    "repro.workloads.distributions",
    "repro.workloads.datasets",
    "repro.workloads.queries",
    "repro.distinct.frequency",
    "repro.distinct.estimators",
    "repro.distinct.bounds",
    "repro.distinct.metrics",
    "repro.engine.table",
    "repro.engine.statistics",
    "repro.engine.catalog",
    "repro.engine.density",
    "repro.engine.selectivity",
    "repro.engine.joins",
    "repro.engine.maintenance",
    "repro.engine.serialization",
    "repro.baselines.gmp",
    "repro.baselines.psc",
    "repro.experiments.config",
    "repro.experiments.parallel",
    "repro.experiments.runner",
    "repro.experiments.figures",
    "repro.experiments.reporting",
    "repro.cli",
]


def first_paragraph(doc: str | None) -> str:
    if not doc:
        return "*(undocumented)*"
    paragraph = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def render_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", ""]
    lines.append(first_paragraph(module.__doc__))
    lines.append("")
    names = [n for n in getattr(module, "__all__", []) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or inspect.ismodule(obj):
            continue
        if inspect.isclass(obj):
            lines.append(f"### class `{name}`")
            lines.append("")
            lines.append(first_paragraph(obj.__doc__))
            lines.append("")
            methods = [
                (m_name, m)
                for m_name, m in inspect.getmembers(obj)
                if not m_name.startswith("_")
                and (inspect.isfunction(m) or inspect.ismethod(m))
                and m.__qualname__.startswith(obj.__name__ + ".")
            ]
            for m_name, m in methods:
                lines.append(f"- `{m_name}{signature_of(m)}` — "
                             f"{first_paragraph(m.__doc__)}")
            if methods:
                lines.append("")
        elif callable(obj):
            lines.append(f"### `{name}{signature_of(obj)}`")
            lines.append("")
            lines.append(first_paragraph(obj.__doc__))
            lines.append("")
        else:
            lines.append(f"### data `{name}`")
            lines.append("")
            lines.append(f"`{obj!r}`"[:300])
            lines.append("")
    return lines


def main() -> None:
    out = [
        "# API reference",
        "",
        "Auto-generated from docstrings by `tools/gen_api_reference.py`; "
        "do not edit by hand.",
        "",
    ]
    for module_name in MODULES:
        out.extend(render_module(module_name))
    target = ROOT / "docs" / "API.md"
    target.parent.mkdir(exist_ok=True)
    target.write_text("\n".join(out) + "\n")
    print(f"wrote {target} ({len(out)} lines)")


if __name__ == "__main__":
    main()
