#!/usr/bin/env python
"""Relative-link checker — thin shim over ``repro.lint`` rule DOC002.

The original standalone checker moved into the unified static-analysis
layer (:mod:`repro.lint.docrules`); this wrapper keeps the historical CLI
contract for scripts and CI that still call it directly:

    python tools/check_links.py

Exit status is the number of broken links (0 = clean), capped at 125.
Prefer ``python -m repro lint`` for the full rule set.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import lint  # noqa: E402  (path set up above)


def main() -> int:
    """Run DOC002 over the doc set; print findings, return their count."""
    report = lint.run_lint(root=ROOT, rules=["DOC002"])
    for finding in report.findings:
        print(f"{finding.path}: {finding.message}")
    if report.findings:
        print(
            f"\n{len(report.findings)} broken link(s) across "
            f"{report.files} file(s)"
        )
    else:
        print(f"links OK ({report.files} files)")
    return min(len(report.findings), 125)


if __name__ == "__main__":
    sys.exit(main())
