#!/usr/bin/env python
"""Relative-link checker for the repo's Markdown docs.

Extracts every inline Markdown link (``[text](target)``) from README.md and
the files under docs/, plus the other top-level Markdown files, and verifies
that each *relative* target resolves to an existing file or directory.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#...``) are skipped — this is a structural check, not a crawler.

Exit status is the number of broken links (0 = clean):

    python tools/check_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
DOC_FILES = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "ROADMAP.md",
]

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def links_in(path: pathlib.Path) -> list[str]:
    """Inline link targets in *path*, code fences excluded."""
    targets = []
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets.extend(_LINK.findall(line))
    return targets


def check_file(path: pathlib.Path) -> list[str]:
    """Broken-link messages for one Markdown file."""
    broken = []
    for target in links_in(path):
        if target.startswith(_SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(
                f"{path.relative_to(ROOT)}: broken link -> {target}"
            )
    return broken


def main() -> int:
    files = [
        ROOT / name for name in DOC_FILES if (ROOT / name).exists()
    ] + sorted((ROOT / "docs").glob("*.md"))
    broken = []
    for path in files:
        broken.extend(check_file(path))
    for message in broken:
        print(message)
    if broken:
        print(f"\n{len(broken)} broken link(s) across {len(files)} file(s)")
    else:
        print(f"links OK ({len(files)} files)")
    return min(len(broken), 125)


if __name__ == "__main__":
    sys.exit(main())
