"""Runnable baseline: GMP incremental maintenance vs one-shot CVB.

The paper compares against Gibbons-Matias-Poosala analytically (Example 4).
This bench runs the actual maintenance algorithm: stream the table into a
GMP histogram (reservoir backing sample + split/recompute), then compare
its achieved max error and its cost profile against a CVB build of the same
column.  The two occupy different niches — GMP pays per-insert work to stay
continuously fresh; CVB pays a one-shot sampling pass — so the bench
reports both cost dimensions.
"""

import numpy as np
from conftest import run_once

from repro.baselines.gmp import GMPHistogram
from repro.core.error_metrics import fractional_max_error
from repro.experiments import reporting
from repro.experiments.runner import build_heapfile, cvb_sampling_cost
from repro.workloads.datasets import make_dataset

N, B, K, F = 100_000, 50, 25, 0.2


def run_comparison():
    dataset = make_dataset("zipf0", N, rng=0)
    stream_order = np.random.default_rng(1).permutation(dataset.values)

    gmp = GMPHistogram(k=K, backing_sample_size=5_000, rng=2)
    gmp.insert_many(stream_order)
    gmp_err = gmp.achieved_error(dataset.values)

    hf = build_heapfile(dataset.values, "random", B, rng=3)
    cvb = cvb_sampling_cost(hf, dataset.values, k=K, f=F, rng=4)

    return {
        "gmp_error": gmp_err,
        "gmp_recomputes": gmp.recompute_count,
        "gmp_backing": gmp.backing_sample.size,
        "cvb_error": cvb.achieved_error,
        "cvb_blocks": cvb.blocks_sampled,
        "cvb_tuples": cvb.tuples_sampled,
    }


def test_gmp_vs_cvb(benchmark, report):
    result = run_once(benchmark, run_comparison)
    report(
        "gmp_baseline",
        "\n\n".join(
            [
                reporting.paper_note(
                    "both reach usable error; GMP touches every insert while "
                    "CVB samples once — the paper's Example 4 contrast, run "
                    "rather than tabulated",
                    caveat=f"n={N:,}, k={K}, GMP backing sample 5,000, "
                    f"CVB target f={F}",
                ),
                reporting.format_table(
                    ["metric", "value"], sorted(result.items())
                ),
            ]
        ),
    )

    # Both produce usable histograms...
    assert result["gmp_error"] < 0.5
    assert result["cvb_error"] < 0.5
    # ...but CVB reads a small fraction of the table where GMP saw all of it.
    assert result["cvb_tuples"] < N
    assert result["gmp_recomputes"] >= 1
