"""Theorem 8: the distinct-value estimation lower bound, demonstrated.

Paper: no estimator can guarantee ratio error below sqrt(n*ln(1/gamma)/r)
with probability 1-gamma.  The bench builds the indistinguishable relation
pair (all-distinct vs heavily-duplicated), verifies that samples from the
two are usually identical in distribution (collision-free), and shows every
estimator in the library forced into large error on one side — with GEE's
worst case tracking the sqrt(n/r) optimum.
"""

import math

import numpy as np
from conftest import run_once

from repro.core import bounds
from repro.distinct.bounds import (
    adversarial_pair,
    empirical_collision_free_rate,
    forced_ratio_error,
)
from repro.distinct.estimators import ALL_ESTIMATORS
from repro.experiments import reporting

N, R, GAMMA = 100_000, 40, 0.5


def estimator_table():
    pair = adversarial_pair(N, R, GAMMA)
    rows = []
    for estimator in ALL_ESTIMATORS:
        errors = [
            forced_ratio_error(pair, estimator, rng=seed) for seed in range(12)
        ]
        rows.append((estimator.name, float(np.median(errors))))
    return pair, rows


def test_theorem8_no_estimator_escapes(benchmark, report):
    pair, rows = run_once(benchmark, estimator_table)
    theory = bounds.theorem8_error_lower_bound(N, R, GAMMA)
    cf_rate = empirical_collision_free_rate(pair, trials=300, rng=0)
    report(
        "theorem8_lower_bound",
        "\n\n".join(
            [
                reporting.paper_note(
                    "every estimator's forced ratio error >= the "
                    "indistinguishability floor; Haas et al's empirical 1.3-2.9 "
                    "errors at r=0.2n sit right at this wall",
                    caveat=f"n={N:,}, r={R}, gamma={GAMMA}; theorem floor "
                    f"sqrt(n*ln(1/gamma)/r) = {theory:.1f}; construction "
                    f"guarantees ratio {pair.guaranteed_ratio:.1f}; "
                    f"collision-free sample rate {cf_rate:.0%}",
                ),
                reporting.format_table(
                    ["estimator", "median forced ratio error"], rows
                ),
            ]
        ),
    )

    # Indistinguishability really occurs at least gamma of the time.
    assert cf_rate >= GAMMA - 0.1
    floor = 0.25 * pair.guaranteed_ratio
    for name, err in rows:
        assert err >= floor, name
    # GEE is near-optimal: its worst case stays within a small factor of
    # sqrt(n/r), unlike naive (n/r on one side) or scale-up.
    by_name = dict(rows)
    assert by_name["gee"] <= 4 * math.sqrt(N / R)
    assert by_name["naive"] > by_name["gee"]


def test_theorem8_haas_setting(benchmark, report):
    """Paper Section 6.1: at r = 0.2n and gamma = 0.5 the bound is ~1.86,
    in close accordance with Haas et al's measured errors (avg 1.33,
    max 2.86 over 24 high-skew datasets)."""
    n = 10**6
    value = run_once(
        benchmark, bounds.theorem8_error_lower_bound, n, int(0.2 * n), 0.5
    )
    report(
        "theorem8_haas",
        reporting.format_table(
            ["quantity", "value"],
            [
                ("theorem floor at r=0.2n, gamma=0.5", round(value, 3)),
                ("Haas et al measured avg", 1.33),
                ("Haas et al measured max", 2.86),
            ],
        ),
    )
    assert 1.8 <= value <= 1.9
