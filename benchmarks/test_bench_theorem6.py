"""Example 4 / Theorem 6: our bound vs the Gibbons-Matias-Poosala bound.

Paper: the GMP guarantee (their Theorem 6) (1) bounds only the variance
error, (2) applies only at astronomically large n (n >= r^3), (3) offers no
smooth trade-off, (4) cannot reach f below ~0.35 at practical k, and (5)
prescribes far larger samples once a small f is demanded.

The bench tabulates both regimes honestly: at GMP's own best-achievable
fraction (c=4, f ~ 0.43-0.48) its nominal sample is small — but its
validity precondition n >= r^3 already fails at a billion rows, and at any
*useful* fraction (f = 0.2 and below) the c needed explodes and our bound
wins by orders of magnitude while also guaranteeing the stronger max
metric.
"""

from conftest import run_once

from repro.core import bounds
from repro.experiments import reporting

N = 10**9  # a billion-row table: large, yet nowhere near GMP's n_min
TARGET_F = 0.2


def best_case_rows():
    """GMP at its own sweet spot: c = 4, the largest f it can state."""
    rows = []
    for k in (100, 500, 1000):
        gmp = bounds.gmp_theorem6(k, c=4.0, n=N)
        rows.append(
            (k, round(gmp.f, 3), gmp.r, f"{gmp.n_min:.1e}", gmp.feasible)
        )
    return rows


def useful_f_rows():
    """Both bounds asked for the same useful fraction f = 0.2."""
    rows = []
    for k in (100, 500, 1000):
        c = bounds.gmp_required_c(k, TARGET_F)
        gmp = bounds.gmp_theorem6(k, c=c, n=N)
        ours = bounds.corollary1_sample_size(
            N, k, TARGET_F, max(min(gmp.gamma, 0.5), 1e-9)
        )
        rows.append(
            (
                k,
                round(c, 1),
                gmp.r,
                f"{gmp.n_min:.1e}",
                gmp.feasible,
                ours,
                round(gmp.r / ours, 1),
            )
        )
    return rows


def test_theorem6_comparison(benchmark, report):
    best = run_once(benchmark, best_case_rows)
    useful = useful_f_rows()
    log_k_tbl = [
        (f, bounds.gmp_required_log_k(f, c=4.0)) for f in (0.43, 0.35, 0.2, 0.1)
    ]
    report(
        "theorem6_gmp_comparison",
        "\n\n".join(
            [
                reporting.paper_note(
                    "GMP's validity needs n >= r^3 (fails even at 1e9 rows); "
                    "below f ~ 0.35 it needs impractical k or exploding c; at "
                    "f = 0.2 our bound needs orders of magnitude fewer "
                    "samples — and bounds the stronger max metric",
                    caveat=f"n = {N:.0e}; 'ours' uses GMP's own gamma",
                ),
                "GMP at its best (c = 4):\n"
                + reporting.format_table(
                    ["k", "f", "r", "n_min", "feasible"], best
                ),
                f"Both bounds at f = {TARGET_F}:\n"
                + reporting.format_table(
                    ["k", "GMP c", "GMP r", "GMP n_min", "feasible",
                     "our r", "GMP/ours"],
                    useful,
                ),
                "k that GMP needs at c = 4 (Example 4.4):\n"
                + reporting.format_table(["target f", "ln(k) needed"], log_k_tbl),
            ]
        ),
    )

    # Example 4.2: validity requires tera-scale+ tables even at c=4.
    for _k, _f, _r, _n_min, feasible in best:
        assert not feasible
    # Example 4.5's substance: at a useful f, our bound wins big.
    for _k, c, gmp_r, _n_min, feasible, ours, _ratio in useful:
        assert c > 4
        assert not feasible
        assert ours < gmp_r / 3
    # Example 4.4: f = 0.35 needs k > 1e5; f = 0.1 needs ln k ~ 500.
    by_f = dict(log_k_tbl)
    assert by_f[0.35] > 11.5  # e^11.5 ~ 10^5
    assert abs(by_f[0.1] - 500) < 5
