"""Parallel trial engine: serial/parallel bit-identity and wall-clock speedup.

Runs the Figure 5 trial sweep (``mean_error_at_rate`` over the scale's rate
grid) twice — once serially, once over a process pool — and

- asserts the accuracy numbers are **bit-identical** (the determinism
  guarantee: every trial's stream derives from its own pre-spawned seed, so
  worker count and scheduling cannot change a single float), and
- records wall-clock times, realised speedup, and aggregate page reads in
  ``benchmarks/results/parallel_speedup.txt``.

The >= 2x speedup assertion only engages on machines with at least 4 CPU
cores (set ``REPRO_ASSERT_SPEEDUP=0`` to disable it even there): on a
smaller runner the fan-out cannot physically pay for its process overhead,
and the bit-identity assertion is the part that must never flake.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _emit import emit_json
from conftest import run_once

from repro.experiments import reporting
from repro.experiments.config import get_scale
from repro.experiments.parallel import TrialPool
from repro.experiments.runner import build_heapfile, mean_error_at_rate

# More trials per point than the figure default: the speedup measurement
# needs enough per-point work for the fan-out to amortise.
TRIALS = 8
# Always fan out over 4 processes, even on smaller machines: the
# bit-identity demonstration must cover the real multi-process path (the
# speedup assertion below is what stays core-count-gated).
PARALLEL_WORKERS = 4


def _sweep(heapfile, values, k, rates, pool):
    errors = []
    wall = 0.0
    reads = 0
    for i, rate in enumerate(rates):
        start = time.perf_counter()
        errors.append(
            mean_error_at_rate(
                heapfile, values, rate, k, trials=TRIALS, rng=100 + i,
                pool=pool,
            )
        )
        wall += time.perf_counter() - start
        reads += pool.last_stats.page_reads
    return errors, wall, reads


def test_parallel_sweep_is_bit_identical_and_fast(benchmark, report):
    scale = get_scale()
    dataset_values = np.random.default_rng(0).permutation(
        np.arange(1, scale.n + 1)
    )
    heapfile = build_heapfile(
        dataset_values, "random", scale.blocking_factor, rng=1
    )
    values = dataset_values

    def run_both():
        with TrialPool(max_workers=1) as serial_pool:
            serial = _sweep(heapfile, values, scale.k, scale.rates, serial_pool)
        with TrialPool(max_workers=PARALLEL_WORKERS) as par_pool:
            par = _sweep(heapfile, values, scale.k, scale.rates, par_pool)
            mode = par_pool.last_stats.mode
        return serial, par, mode

    (serial_errors, serial_wall, serial_reads), (
        par_errors,
        par_wall,
        par_reads,
    ), mode = run_once(benchmark, run_both)

    # The determinism guarantee: element-wise identical floats.
    assert par_errors == serial_errors
    assert par_reads == serial_reads

    speedup = serial_wall / par_wall if par_wall else 1.0
    text = "\n".join(
        [
            reporting.paper_note(
                "parallel trials reproduce the serial sweep bit-for-bit; "
                "wall-clock speedup tracks the worker count on multi-core "
                "machines",
                caveat=f"scale={scale.name}, trials/point={TRIALS}, "
                f"cores available={os.cpu_count()}",
            ),
            "",
            reporting.format_table(
                ["config", "wall_s", "page_reads", "errors_identical"],
                [
                    ["workers=1 (serial)", serial_wall, serial_reads, "-"],
                    [
                        f"workers={PARALLEL_WORKERS} [{mode}]",
                        par_wall,
                        par_reads,
                        "yes",
                    ],
                ],
            ),
            "",
            f"speedup: {speedup:.2f}x "
            f"({PARALLEL_WORKERS} workers, {os.cpu_count()} cores)",
        ]
    )
    report("parallel_speedup", text)
    emit_json(
        "parallel_speedup",
        {
            "params": {
                "scale": scale.name,
                "trials_per_point": TRIALS,
                "parallel_workers": PARALLEL_WORKERS,
                "cores": os.cpu_count(),
            },
            "serial": {"wall_s": serial_wall, "page_reads": serial_reads},
            "parallel": {
                "wall_s": par_wall,
                "page_reads": par_reads,
                "mode": mode,
            },
            "errors_identical": par_errors == serial_errors,
            "speedup": speedup,
        },
    )

    assert_speedup = (
        (os.cpu_count() or 1) >= 4
        and os.environ.get("REPRO_ASSERT_SPEEDUP", "1") != "0"
    )
    if assert_speedup:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {PARALLEL_WORKERS} workers on a "
            f"{os.cpu_count()}-core machine, measured {speedup:.2f}x"
        )
