"""Calibrating Corollary 1's constant: theory vs measured requirement.

Corollary 1 prescribes ``r = 4*k*ln(2n/gamma) / f^2``.  The constant 4 and
the union bound over all n separator positions make it provably safe but
conservative; practitioners want to know by how much.  This bench measures
the *empirical* sample size needed for fractional error f (via the direct
requirement search) and reports the implied constant

    ``c_hat = r_measured * f^2 / (k * ln(2n/gamma))``

across k and f.  Expectation: c_hat is roughly stable (the bound's *shape*
is right — that is the reproducible claim) and sits well below 4 (the
*constant* is conservative, which is also why the measured Theorem 4
violation rate in `test_bench_theorem4` is zero rather than gamma).
"""

import math

import numpy as np
from conftest import run_once

from repro.experiments import reporting
from repro.experiments.runner import build_heapfile, required_blocks_for_error
from repro.workloads.datasets import make_dataset

N, B, GAMMA = 200_000, 50, 0.01


def evaluate():
    dataset = make_dataset("zipf0", N, rng=0)
    log_term = math.log(2 * N / GAMMA)
    rows = []
    for k in (20, 50):
        for f in (0.2, 0.3):
            hf = build_heapfile(dataset.values, "random", B, rng=1)
            blocks = required_blocks_for_error(
                hf, dataset.values, k, f, trials=9, rng=2
            )
            r_measured = blocks * B
            r_theory = 4 * k * log_term / (f * f)
            c_hat = r_measured * f * f / (k * log_term)
            rows.append(
                (
                    k,
                    f,
                    r_measured,
                    int(r_theory),
                    round(c_hat, 3),
                    round(r_theory / max(1, r_measured), 1),
                )
            )
    return rows


def test_corollary1_constant_calibration(benchmark, report):
    rows = run_once(benchmark, evaluate)
    report(
        "calibration_corollary1",
        "\n\n".join(
            [
                reporting.paper_note(
                    "the bound's shape (r ~ k/f^2) holds; its constant is "
                    "conservative by an order of magnitude — the price of a "
                    "distribution-free, all-buckets-simultaneous guarantee",
                    caveat=f"n={N:,}, gamma={GAMMA}, zipf0, random layout; "
                    "measured via direct requirement search",
                ),
                reporting.format_table(
                    ["k", "f", "r measured", "r theory", "c_hat",
                     "safety factor"],
                    rows,
                ),
            ]
        ),
    )

    c_hats = [row[4] for row in rows]
    # The theory never under-prescribes...
    for _k, _f, r_measured, r_theory, _c, _s in rows:
        assert r_theory >= r_measured
    # ...its empirical constant is materially below 4 at every setting...
    assert max(c_hats) < 4.0
    # ...and the k/f^2 shape holds: c_hat varies far less than the 6x
    # spread of k/f^2 across the grid.
    assert max(c_hats) / max(min(c_hats), 1e-6) < 25
