"""Figures 3 & 4: sampling rate / disk blocks sampled vs table size.

Paper: at fixed max error (<= 0.1 at paper scale) and Z=2, the *fraction* of
rows that must be sampled falls roughly like log(n)/n as the table grows
(Figure 3), while the *number of disk blocks* stays nearly constant
(Figure 4) — the practical payoff of Corollary 1's near-independence from n.
"""

from conftest import run_once

from repro.experiments import figures, reporting


def test_fig3_sampling_rate_falls_with_n(benchmark, report):
    result = run_once(benchmark, figures.figures_3_and_4, seed=1)
    text = "\n\n".join(
        [
            reporting.paper_note(
                "sampling rate falls ~log(n)/n; blocks sampled ~constant",
                caveat=f"scale={result['scale']}, k={result['k']}, "
                f"f={result['f']} (paper: n=5M..20M, k=600, f=0.1)",
            ),
            reporting.format_series(
                "Figure 3: sampling rate vs n (Z=2)", [result["rate"]]
            ),
            reporting.format_series(
                "Figure 4: blocks sampled vs n (Z=2)", [result["blocks"]]
            ),
        ]
    )
    report("fig3_4", text)

    rates = result["rate"].y
    blocks = result["blocks"].y
    ns = result["rate"].x
    # Figure 3's shape: the rate at the largest table is clearly below the
    # rate at the smallest.
    assert rates[-1] < rates[0]
    # Figure 4's shape: blocks grow much slower than n does (log-like, not
    # linear): across a 4x n range, block growth stays under half of it.
    n_growth = ns[-1] / ns[0]
    block_growth = max(blocks) / max(1, min(blocks))
    assert block_growth < 0.75 * n_growth
