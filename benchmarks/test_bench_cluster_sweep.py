"""Extension experiment: sampling difficulty vs degree of clustering.

Figure 7 compares two points (random vs 20%-clustered).  The simulator
makes the full curve cheap: sweep the clustered fraction from 0 to 1 and
measure (a) the histogram error at a fixed block-sampling budget, and
(b) the ground-truth block requirement for a fixed error.  Expectation from
Section 4.1's scenario analysis: smooth, monotone degradation from the
"every page is worth b tuples" extreme to the "every page is worth ~1" one.
"""

import numpy as np
from conftest import run_once

from repro.experiments import reporting
from repro.experiments.runner import (
    build_heapfile,
    mean_error_at_rate,
    required_blocks_for_error,
)
from repro.workloads.datasets import make_dataset

N, B, K = 200_000, 50, 50
FRACTIONS = (0.0, 0.2, 0.5, 0.8, 1.0)
RATE = 0.05
F_TARGET = 0.25


def evaluate():
    dataset = make_dataset("zipf2", N, rng=0)
    rows = []
    for fraction in FRACTIONS:
        hf = build_heapfile(
            dataset.values, "partial", B, rng=1, cluster_fraction=fraction
        )
        error = mean_error_at_rate(
            hf, dataset.values, RATE, K, trials=5, rng=2
        )
        required = required_blocks_for_error(
            hf, dataset.values, K, F_TARGET, trials=5, rng=3
        )
        rows.append((fraction, round(float(error), 3), required))
    return rows


def test_cluster_fraction_sweep(benchmark, report):
    rows = run_once(benchmark, evaluate)
    report(
        "ablation_cluster_sweep",
        "\n\n".join(
            [
                reporting.paper_note(
                    "error at fixed budget and blocks required at fixed "
                    "error both grow as intra-page clustering increases "
                    "(Section 4.1 scenarios a -> c -> b)",
                    caveat=f"n={N:,}, b={B}, k={K}, budget rate {RATE:.0%}, "
                    f"target f={F_TARGET}",
                ),
                reporting.format_table(
                    ["clustered fraction", f"error @ {RATE:.0%}",
                     f"blocks for f<={F_TARGET}"],
                    rows,
                ),
            ]
        ),
    )

    errors = [row[1] for row in rows]
    required = [row[2] for row in rows]
    # Ends of the sweep: fully clustered is much harder than fully random.
    assert errors[-1] > 2 * errors[0]
    assert required[-1] > 2 * required[0]
    # Every clustered configuration costs clearly more than random.  (Full
    # monotonicity is not asserted: at fraction 1.0 the hot value becomes
    # one giant run whose mass a few pages pin down exactly, which can make
    # the requirement dip relative to 0.8 — a real effect, visible in the
    # table, not noise.)
    for fraction, error, blocks in rows[1:]:
        assert error > 1.2 * errors[0], fraction
        assert blocks > 2 * required[0], fraction
