"""Figure 7: max error vs sampling rate, random vs partially clustered.

Paper: with 20% of each value's duplicates stored contiguously, the same
sampling rate yields a worse histogram than under a random layout — the
effective sample per block shrinks, so more sampling is needed for the same
error.  (The CVB algorithm's adaptivity is what detects this at run time.)
"""

import numpy as np
from conftest import run_once

from repro.experiments import figures, reporting


def test_fig7_clustering_requires_more_sampling(benchmark, report):
    result = run_once(benchmark, figures.figure7, seed=0)
    text = "\n\n".join(
        [
            reporting.paper_note(
                "partially clustered layout shows higher error at every "
                "sampling rate than the random layout",
                caveat=f"scale={result['scale']}, k={result['k']}, "
                "cluster fraction 0.2 (paper: n=10M, k=600)",
            ),
            reporting.format_series(
                "Figure 7: max error vs sampling rate (Z=2)",
                result["series"],
            ),
        ]
    )
    report("fig7", text)

    random_series, partial_series = result["series"]
    assert random_series.label == "random"
    # Averaged over the rate grid, the clustered layout is clearly worse.
    assert np.mean(partial_series.y) > 1.2 * np.mean(random_series.y)
