"""Vectorized kernels: scalar/vector bit-identity and wall-clock speedup.

Runs the kernel hot paths of the CVB cost story — batched block-stream
page gathers, the one-tuple-per-block representative draws of Section 4.2,
the Figure 5/7 ground-truth recount, and the full-column histogram build —
once under each ``REPRO_KERNELS`` family, and

- asserts the outputs are **bit-identical** (the contract the differential
  harness in ``tests/kernels/`` pins on generated datasets, re-checked
  here on the measured workload), and
- records per-path wall-clock and the realised speedup in
  ``benchmarks/results/kernel_speedup.txt``.

The suite uses a wide-record blocking factor (20 tuples per 8 KB page,
i.e. ~400-byte records — the upper end of the paper's record-size sweep):
that is the regime where per-page Python overhead dominates the scalar
family and batching pays most.  The >= 5x aggregate speedup assertion only
engages at ``REPRO_SCALE`` >= 5 M rows (set ``REPRO_ASSERT_SPEEDUP=0`` to
disable it even there): below that the arrays are too small for kernel
cost to dominate fixed overhead, and the bit-identity assertion is the
part that must never flake.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _emit import emit_json
from conftest import run_once

from repro.core import kernels
from repro.core.histogram import EquiHeightHistogram
from repro.experiments import reporting
from repro.experiments.config import get_scale
from repro.sampling.block_sampler import BlockSampleStream
from repro.storage.heapfile import HeapFile

#: Tuples per page: 8 KB pages of ~400-byte records (paper record sweep).
WIDE_BLOCKING_FACTOR = 20
#: Best-of timing repetitions per (path, mode) pair.
REPS = 3
#: The aggregate speedup the vector family must deliver at >= 5 M rows.
TARGET_SPEEDUP = 5.0
#: Row count above which the speedup assertion engages.
ASSERT_ROWS = 5_000_000


def _best_of(fn, reps=REPS):
    """Minimum wall-clock over *reps* runs; returns (seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(paths):
    """Time every path under each kernel family; keep results for identity."""
    walls, results = {}, {}
    for mode in kernels.KERNEL_MODES:
        with kernels.use_kernels(mode):
            for name, fn in paths:
                walls[(name, mode)], results[(name, mode)] = _best_of(fn)
    return walls, results


def test_kernel_paths_are_bit_identical_and_fast(benchmark, report):
    scale = get_scale()
    rng = np.random.default_rng(0)
    values = rng.zipf(1.7, scale.n).astype(np.float64)
    sorted_values = np.sort(values)
    heapfile = HeapFile.from_values(
        values, layout="random", rng=1, blocking_factor=WIDE_BLOCKING_FACTOR
    )
    pages = heapfile.num_pages // 2
    sample = np.sort(rng.choice(values, size=max(scale.n // 100, 100)))
    approx = EquiHeightHistogram.from_sorted_values(sample, scale.k)

    paths = [
        (
            "block_stream_take",
            lambda: BlockSampleStream(heapfile, rng=3).take(pages),
        ),
        (
            "one_per_block",
            lambda: BlockSampleStream(heapfile, rng=3).take_one_tuple_per_block(
                pages, rng=5
            ),
        ),
        (
            "recount_ground_truth",
            lambda: approx.recount(sorted_values),
        ),
        (
            "histogram_from_sorted",
            lambda: EquiHeightHistogram.from_values(sorted_values, scale.k),
        ),
    ]

    walls, results = run_once(benchmark, _measure, paths)

    # The contract: both families produce the same bits on the measured
    # workload (arrays element-identical, histograms field-identical).
    for name, _ in paths:
        scalar, vector = results[(name, "scalar")], results[(name, "vector")]
        if isinstance(scalar, EquiHeightHistogram):
            assert scalar == vector, f"{name}: histograms diverged"
            continue
        if not isinstance(scalar, tuple):
            scalar, vector = (scalar,), (vector,)
        for part_s, part_v in zip(scalar, vector):
            part_s, part_v = np.asarray(part_s), np.asarray(part_v)
            assert part_s.dtype == part_v.dtype, f"{name}: dtypes diverged"
            assert np.array_equal(part_s, part_v), f"{name}: values diverged"

    rows, speedups = [], {}
    for name, _ in paths:
        s, v = walls[(name, "scalar")], walls[(name, "vector")]
        speedups[name] = s / v if v else 1.0
        rows.append([name, s, v, speedups[name]])
    scalar_total = sum(walls[(name, "scalar")] for name, _ in paths)
    vector_total = sum(walls[(name, "vector")] for name, _ in paths)
    aggregate = scalar_total / vector_total if vector_total else 1.0
    rows.append(["aggregate", scalar_total, vector_total, aggregate])

    text = "\n".join(
        [
            reporting.paper_note(
                "the vector kernel family reproduces the scalar family "
                "bit-for-bit while batching away per-page and per-record "
                "Python overhead on the CVB hot paths",
                caveat=f"scale={scale.name} (n={scale.n}), "
                f"blocking_factor={WIDE_BLOCKING_FACTOR}, "
                f"pages/draw={pages}, best of {REPS}",
            ),
            "",
            reporting.format_table(
                ["path", "scalar_s", "vector_s", "speedup"], rows
            ),
        ]
    )
    report("kernel_speedup", text)
    emit_json(
        "kernel_speedup",
        {
            "params": {
                "scale": scale.name,
                "n": scale.n,
                "k": scale.k,
                "blocking_factor": WIDE_BLOCKING_FACTOR,
                "pages_per_draw": pages,
                "reps": REPS,
            },
            "paths": {
                name: {
                    "scalar_s": walls[(name, "scalar")],
                    "vector_s": walls[(name, "vector")],
                    "speedup": speedups[name],
                }
                for name, _ in paths
            },
            "aggregate_speedup": aggregate,
            "bit_identical": True,
        },
    )

    assert_speedup = (
        scale.n >= ASSERT_ROWS
        and os.environ.get("REPRO_ASSERT_SPEEDUP", "1") != "0"
    )
    if assert_speedup:
        assert aggregate >= TARGET_SPEEDUP, (
            f"expected >= {TARGET_SPEEDUP}x aggregate kernel speedup at "
            f"n={scale.n}, measured {aggregate:.2f}x"
        )
        for name, speedup in speedups.items():
            assert speedup >= 2.0, (
                f"{name}: expected >= 2x at n={scale.n}, "
                f"measured {speedup:.2f}x"
            )
