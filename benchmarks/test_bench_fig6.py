"""Figure 6: required sampling rate vs number of histogram bins.

Paper: at fixed max error (0.2) and Z=2, the required sampling rate grows
linearly with the bucket count — Corollary 1's r ~ 4k*ln(2n/gamma)/f^2 is
linear in k.
"""

from conftest import run_once

from repro.experiments import figures, reporting


def test_fig6_required_rate_linear_in_bins(benchmark, report):
    result = run_once(benchmark, figures.figure6, seed=0)
    series = result["series"]
    text = "\n\n".join(
        [
            reporting.paper_note(
                "required sampling rate grows linearly with #bins",
                caveat=f"scale={result['scale']}, f={result['f']} "
                "(paper: bins 50..600, f=0.2, n=10M)",
            ),
            reporting.format_series(
                "Figure 6: required sampling rate vs bins (Z=2)", [series]
            ),
        ]
    )
    report("fig6", text)

    rates = series.y
    bins = series.x
    # Monotone growth end-to-end, and super-constant: the largest bin count
    # needs several times the sampling of the smallest.
    assert rates[-1] > rates[0]
    assert rates[-1] / max(rates[0], 1e-9) > 0.25 * (bins[-1] / bins[0])
