"""Theorem 4 / Corollary 1 validation: prescribed samples deliver the
promised deviation.

Monte-Carlo check at bench scale: at the Corollary 1 sample size the
histogram is delta-deviant in (at least) a 1-gamma fraction of trials — in
practice all of them, because the bound is conservative — and the measured
error follows the 1/sqrt(r) law the formula predicts.
"""

import numpy as np
from _emit import emit_json
from conftest import run_once

from repro.core import bounds
from repro.core.error_metrics import max_error_fraction
from repro.core.histogram import EquiHeightHistogram
from repro.experiments import reporting
from repro.sampling.record_sampler import sample_with_replacement

N, K, GAMMA = 200_000, 20, 0.1
TRIALS = 20


def deviance_trial_rates():
    data = np.arange(N)
    rows = []
    for f in (0.3, 0.5):
        r = min(N, bounds.corollary1_sample_size(N, K, f, GAMMA))
        violations = 0
        measured = []
        for seed in range(TRIALS):
            sample = sample_with_replacement(data, r, seed)
            approx = EquiHeightHistogram.from_values(sample, K)
            err = max_error_fraction(approx.recount(data).counts)
            measured.append(err)
            if err > f:
                violations += 1
        rows.append((f, r, float(np.mean(measured)), violations))
    return rows


def error_scaling_series():
    data = np.arange(N)
    series = []
    for r in (2_000, 8_000, 32_000, 128_000):
        errs = []
        for seed in range(8):
            sample = sample_with_replacement(data, r, seed)
            approx = EquiHeightHistogram.from_values(sample, K)
            errs.append(max_error_fraction(approx.recount(data).counts))
        series.append((r, float(np.mean(errs))))
    return series


def test_theorem4_guarantee_holds(benchmark, report):
    rows = run_once(benchmark, deviance_trial_rates)
    scaling = error_scaling_series()
    report(
        "theorem4_validation",
        "\n\n".join(
            [
                reporting.paper_note(
                    "prescribed r yields delta-deviance w.p. >= 1-gamma; "
                    "error ~ 1/sqrt(r)",
                    caveat=f"n={N:,}, k={K}, gamma={GAMMA}, {TRIALS} trials",
                ),
                reporting.format_table(
                    ["f", "prescribed r", "mean measured f", "violations"],
                    rows,
                ),
                reporting.format_table(["r", "mean measured f"], scaling),
            ]
        ),
    )
    emit_json(
        "theorem4_validation",
        {
            "params": {"n": N, "k": K, "gamma": GAMMA, "trials": TRIALS},
            "deviance": [
                {
                    "f": f,
                    "prescribed_r": r,
                    "mean_measured_f": mean_f,
                    "violations": violations,
                }
                for f, r, mean_f, violations in rows
            ],
            "error_scaling": [
                {"r": r, "mean_measured_f": err} for r, err in scaling
            ],
        },
    )

    for f, _r, mean_f, violations in rows:
        assert violations <= max(1, int(GAMMA * TRIALS))
        # Conservative bound: measured error sits well below the target.
        assert mean_f < f

    # 1/sqrt(r): quadrupling r should roughly halve the error.
    errs = [e for _, e in scaling]
    for a, b in zip(errs, errs[1:]):
        assert b < a
    assert errs[0] / errs[-1] > 3  # 64x samples -> ideally 8x, allow slack
