"""Example 1 / Theorems 1 & 3: why the max error metric matters.

Paper (k=1000, f=0.05, t=10): a histogram whose *average* error is bounded
by f*n/k can still mis-estimate a range query by a 13.5x factor over the
perfect histogram, a variance-bounded one by 2.8x — while a max-error-
bounded histogram is within (1+f) = 1.05x.

The bench prints the analytic table and then *realises* the adversary:

- bucket masses with one bucket oversized by f*n/2 (the deficit spread
  thinly, so Δavg stays exactly f*n/k), and
- every bucket's mass concentrated at its left edge, so interpolation is
  maximally wrong inside the oversized bucket.

A range query ending just past that edge is then misestimated by ~f*n/2 —
(f*k/2) ideal bucket sizes, far beyond the perfect histogram's 2n/k
envelope — while the same data under a *max*-bounded histogram stays within
Theorem 3's (1+f)*2n/k.
"""

import numpy as np
from conftest import run_once

from repro.core import bounds
from repro.core.error_metrics import avg_error, max_error
from repro.core.histogram import EquiHeightHistogram
from repro.experiments import reporting

N, K, F, T = 1_000_000, 1000, 0.05, 10
WIDTH = 1_000  # domain width allotted to each bucket


def analytic_table():
    perfect = bounds.theorem1_perfect_relative_error(T)
    avg = bounds.theorem1_avg_relative_error(K, F, T)
    var = bounds.theorem1_var_relative_error(K, F, T)
    mx = bounds.theorem3_relative_error(F, T)
    return [
        ("perfect", perfect, 1.0),
        ("avg-bounded (Thm 1.2)", avg, avg / perfect),
        ("var-bounded (Thm 1.3)", var, var / perfect),
        ("max-bounded (Thm 3)", mx, mx / perfect),
    ]


def _edge_concentrated_data(masses):
    """masses[j] copies of the value just above bucket j's left boundary."""
    points = np.arange(K, dtype=np.int64) * WIDTH + 1
    return np.repeat(points, masses), points


def adversarial_demo():
    base = N // K
    hot = K // 2
    extra = int(F * N / 2)

    # Avg-bounded adversary: one bucket + extra, deficit spread thinly.
    masses = np.full(K, base, dtype=np.int64)
    masses[hot] += extra
    drain = np.arange(K) != hot
    per_bucket_drain = extra // (K - 1)
    masses[drain] -= per_bucket_drain
    masses[0] -= extra - per_bucket_drain * (K - 1)
    data, points = _edge_concentrated_data(masses)

    separators = (np.arange(1, K, dtype=np.float64)) * WIDTH
    skewed = EquiHeightHistogram.from_separators(separators, data)

    probe_hi = float(points[hot]) + 0.5  # just past the hot bucket's mass
    truth = float(masses[: hot + 1].sum())
    est = skewed.estimate_range(0, probe_hi)
    avg_adversary_error = abs(est - truth)

    # Max-bounded control: perfectly balanced masses, same edge placement.
    balanced, _ = _edge_concentrated_data(np.full(K, base, dtype=np.int64))
    control = EquiHeightHistogram.from_separators(separators, balanced)
    truth_control = float(base * (hot + 1))
    control_error = abs(control.estimate_range(0, probe_hi) - truth_control)

    return {
        "avg_error_fraction": avg_error(skewed.counts) * K / N,
        "max_error_fraction": max_error(skewed.counts) * K / N,
        "avg_adversary_probe_error": avg_adversary_error,
        "max_bounded_probe_error": control_error,
        "perfect_envelope_2n_over_k": bounds.theorem1_perfect_absolute_error(N, K),
        "theorem3_envelope": bounds.theorem3_absolute_error(N, K, F),
    }


def test_example1_metric_comparison(benchmark, report):
    demo = run_once(benchmark, adversarial_demo)
    rows = analytic_table()
    text = "\n\n".join(
        [
            reporting.paper_note(
                "avg-bounded 13.5x worse, var-bounded 2.8x worse, "
                "max-bounded 1.05x (Example 1: k=1000, f=0.05, t=10)"
            ),
            reporting.format_table(
                ["histogram guarantee", "worst rel error", "vs perfect"],
                rows,
            ),
            reporting.format_table(
                ["constructed adversary", "value"], sorted(demo.items())
            ),
        ]
    )
    report("example1_theorem1_3", text)

    factors = {name: factor for name, _, factor in rows}
    assert abs(factors["avg-bounded (Thm 1.2)"] - 13.5) < 0.1
    assert abs(factors["var-bounded (Thm 1.3)"] - 2.8) < 0.1
    assert abs(factors["max-bounded (Thm 3)"] - 1.05) < 0.01

    # The adversary has a small average error by construction...
    assert demo["avg_error_fraction"] <= F * 1.01
    # ...yet mis-answers a range query by many bucket widths,
    assert demo["avg_adversary_probe_error"] > (
        5 * demo["perfect_envelope_2n_over_k"]
    )
    # ...which the max metric exposes immediately,
    assert demo["max_error_fraction"] > 5 * F
    # ...while the max-bounded histogram stays within Theorem 3's envelope.
    assert demo["max_bounded_probe_error"] <= demo["theorem3_envelope"]
