"""Figure 8: sampling required vs record size.

Paper: at one million records and max error <= 0.1, the required amount of
sampling grows linearly with the record size.  Larger records mean fewer
tuples per page (blocking factor b falls), and the tuple budget prescribed
by Corollary 1 then costs proportionally more disk blocks: g = r/b.
The row-level sampling fraction stays roughly flat.
"""

from conftest import run_once

from repro.experiments import figures, reporting


def test_fig8_blocks_grow_with_record_size(benchmark, report):
    result = run_once(benchmark, figures.figure8, seed=0)
    text = "\n\n".join(
        [
            reporting.paper_note(
                "disk blocks sampled grow ~linearly with record size; "
                "row sampling fraction roughly flat",
                caveat=f"scale={result['scale']}, k={result['k']}, "
                f"f={result['f']} (paper: n=1M, f=0.1, 16..128-byte records)",
            ),
            reporting.format_series(
                "Figure 8: blocks sampled vs record size (Z=2)",
                [result["blocks"]],
            ),
            reporting.format_series(
                "Figure 8 (companion): row sampling rate vs record size",
                [result["rate"]],
            ),
        ]
    )
    report("fig8", text)

    blocks = result["blocks"].y
    sizes = result["blocks"].x
    # Monotone overall and super-constant growth: 8x record size needs at
    # least ~3x the blocks even under sampling noise.
    assert blocks[-1] > blocks[0]
    assert blocks[-1] / max(1, blocks[0]) > 0.35 * (sizes[-1] / sizes[0])
