"""Page-sampling strategy ablation: uniform vs Bernoulli vs systematic.

Not a paper figure, but a design-space check the storage simulator makes
cheap: at equal I/O budget, uniform block sampling and Bernoulli page
sampling build equally good histograms, while systematic (every j-th page)
sampling is fine on random layouts but collapses on periodic/sorted ones —
the reason the paper's algorithm (and SQL Server) sample pages uniformly.
"""

import numpy as np
from conftest import run_once

from repro.core.error_metrics import fractional_max_error
from repro.core.histogram import EquiHeightHistogram
from repro.experiments import reporting
from repro.sampling.block_sampler import sample_blocks
from repro.sampling.page_samplers import (
    bernoulli_page_sample,
    systematic_page_sample,
)
from repro.storage import HeapFile

N, B, K = 200_000, 50, 50
BUDGET_FRACTION = 0.1


def _quality(sample, data):
    hist = EquiHeightHistogram.from_values(sample, K)
    return fractional_max_error(hist.separators, np.sort(sample), data)


def evaluate():
    rng = np.random.default_rng(0)
    base = np.arange(N)
    rows = []
    # Banded round-robin stripe: the domain splits into 10 bands and page i
    # holds the next chunk of band (i mod 10) — so a stride-10 systematic
    # sample only ever sees one band of the domain.
    bands = np.array_split(base, 10)
    positions = [0] * 10
    striped_pages = []
    for i in range(N // B):
        j = i % 10
        striped_pages.append(bands[j][positions[j] : positions[j] + B])
        positions[j] += B
    layouts = {
        "random": rng.permutation(base),
        "sorted": base,
        "banded": np.concatenate(striped_pages),
    }
    stride = int(1 / BUDGET_FRACTION)
    for layout_name, laid_out in layouts.items():
        hf = HeapFile(laid_out, blocking_factor=B)
        data = np.sort(laid_out)
        num_blocks = int(BUDGET_FRACTION * hf.num_pages)
        uniform = np.mean(
            [
                _quality(sample_blocks(hf, num_blocks, rng=s), data)
                for s in range(5)
            ]
        )
        bernoulli = np.mean(
            [
                _quality(bernoulli_page_sample(hf, BUDGET_FRACTION, rng=s), data)
                for s in range(5)
            ]
        )
        systematic = np.mean(
            [
                _quality(systematic_page_sample(hf, stride, rng=s), data)
                for s in range(5)
            ]
        )
        rows.append(
            (
                layout_name,
                round(float(uniform), 3),
                round(float(bernoulli), 3),
                round(float(systematic), 3),
            )
        )
    return rows


def test_page_sampler_ablation(benchmark, report):
    rows = run_once(benchmark, evaluate)
    report(
        "ablation_page_samplers",
        "\n\n".join(
            [
                reporting.paper_note(
                    "uniform ~ Bernoulli everywhere; systematic matches on "
                    "random layouts but cannot be trusted on structured ones",
                    caveat=f"n={N:,}, b={B}, k={K}, "
                    f"I/O budget {BUDGET_FRACTION:.0%} of pages",
                ),
                reporting.format_table(
                    ["layout", "uniform", "bernoulli", "systematic"], rows
                ),
            ]
        ),
    )

    by_layout = {row[0]: row for row in rows}
    # On the random layout all three agree within noise.
    uniform, bernoulli, systematic = by_layout["random"][1:]
    assert systematic < 2.5 * max(uniform, 0.02) + 0.05
    assert bernoulli < 2.5 * max(uniform, 0.02) + 0.05
    # On the banded layout systematic sampling collapses: it only ever
    # observes one tenth of the domain.
    assert by_layout["banded"][3] > 2 * by_layout["banded"][1]
