"""Design-effect model vs CVB vs ground truth, per layout.

Section 4.1's scenario analysis, made quantitative: estimate the intraclass
correlation rho from a 50-page pilot, predict the block budget through the
design effect ``1 + (b-1)*rho``, and compare against (a) the ground-truth
requirement found by direct search and (b) what CVB actually spends.

Expectation: the pilot-based prediction ranks the layouts exactly as the
measured costs do, for a tiny fraction of the sampling cost — the model
"prices" a layout before committing to sample it.
"""

import numpy as np
from conftest import run_once

from repro.experiments import reporting
from repro.experiments.runner import (
    build_heapfile,
    cvb_sampling_cost,
    required_blocks_for_error,
)
from repro.sampling.design_effect import (
    estimate_rho_from_pilot,
    required_blocks_with_correlation,
)
from repro.workloads.datasets import make_dataset

N, B, K, F, GAMMA = 200_000, 50, 50, 0.2, 0.01
PILOT = 50


def evaluate():
    dataset = make_dataset("zipf2", N, rng=0)
    rows = []
    for layout in ("random", "partial", "sorted"):
        hf = build_heapfile(dataset.values, layout, B, rng=1)
        rho = max(0.0, estimate_rho_from_pilot(hf, pilot_blocks=PILOT, rng=2))
        predicted = required_blocks_with_correlation(N, K, F, GAMMA, B, rho)
        ground_truth = required_blocks_for_error(
            hf, dataset.values, K, F, trials=5, rng=3
        )
        cvb = cvb_sampling_cost(hf, dataset.values, k=K, f=F, rng=4)
        rows.append(
            (
                layout,
                round(rho, 3),
                predicted,
                ground_truth,
                cvb.blocks_sampled,
            )
        )
    return rows


def test_design_effect_predicts_layout_cost(benchmark, report):
    rows = run_once(benchmark, evaluate)
    report(
        "design_effect",
        "\n\n".join(
            [
                reporting.paper_note(
                    "a 50-page pilot's intraclass correlation ranks layout "
                    "difficulty exactly as ground truth and CVB spend do — "
                    "Section 4.1's effective-sampling-rate intuition as a "
                    "formula",
                    caveat=f"n={N:,}, b={B}, k={K}, f={F}; prediction uses "
                    "Corollary 1's conservative constant, so absolute "
                    "budgets sit above ground truth",
                ),
                reporting.format_table(
                    ["layout", "pilot rho", "predicted blocks",
                     "ground-truth blocks", "CVB blocks"],
                    rows,
                ),
            ]
        ),
    )

    rhos = [row[1] for row in rows]
    predictions = [row[2] for row in rows]
    truths = [row[3] for row in rows]
    # rho separates the layouts sharply...
    assert rhos[0] < 0.1
    assert rhos[2] > 0.8
    # ...and the three orderings agree.
    assert predictions == sorted(predictions)
    assert truths == sorted(truths)
    # The conservative prediction never undershoots ground truth.
    for (_l, _rho, predicted, ground_truth, _cvb) in rows:
        assert predicted >= ground_truth
