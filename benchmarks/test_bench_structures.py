"""Histogram structure shoot-out: equi-height vs equi-width vs MaxDiff vs
compressed, at equal bucket budget.

The paper's closing goal is extending its sampling analysis to "other
histogram structures [15, 16]"; this bench provides the accuracy baseline
that extension would start from.  Each structure gets the same k and the
same random-range workload across three data shapes; reported is the mean
absolute range-estimation error in units of the ideal bucket size n/k
(so 1.0 means "off by one bucket's worth of tuples").

Expectation: equi-width collapses under skew; equi-height (with its
EQ_ROWS refinement) and compressed stay accurate everywhere; MaxDiff sits
between, excelling where frequency jumps dominate.
"""

import numpy as np
from conftest import run_once

from repro.core.compressed import CompressedHistogram
from repro.core.equiwidth import EquiWidthHistogram
from repro.core.histogram import EquiHeightHistogram
from repro.core.maxdiff import MaxDiffHistogram
from repro.experiments import reporting
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import random_range_queries, true_range_count

N, K, QUERIES = 100_000, 50, 300

STRUCTURES = {
    "equi_height": EquiHeightHistogram.from_values,
    "equi_width": EquiWidthHistogram.from_values,
    "maxdiff": MaxDiffHistogram.from_values,
    "compressed": CompressedHistogram.from_values,
}


def evaluate():
    rows = []
    for dataset_name in ("zipf0", "zipf2", "bimodal"):
        dataset = make_dataset(dataset_name, N, rng=0)
        values = dataset.values
        queries = random_range_queries(values, QUERIES, rng=1)
        truths = [true_range_count(values, q) for q in queries]
        unit = N / K
        row = [dataset_name]
        for name, build in STRUCTURES.items():
            hist = build(values, K)
            errors = [
                abs(hist.estimate_range(q.lo, q.hi) - t)
                for q, t in zip(queries, truths)
            ]
            row.append(round(float(np.mean(errors)) / unit, 3))
        rows.append(row)
    return rows


def test_structure_shootout(benchmark, report):
    rows = run_once(benchmark, evaluate)
    report(
        "structure_shootout",
        "\n\n".join(
            [
                reporting.paper_note(
                    "equi-height/compressed accurate everywhere; equi-width "
                    "collapses under skew — why commercial optimizers use "
                    "equi-height (Section 2)",
                    caveat=f"n={N:,}, k={K}, {QUERIES} random range queries; "
                    "error in units of n/k, built from full data",
                ),
                reporting.format_table(
                    ["dataset", *STRUCTURES.keys()], rows
                ),
            ]
        ),
    )

    by_dataset = {row[0]: dict(zip(STRUCTURES.keys(), row[1:])) for row in rows}
    # Uniform data: everything is fine.
    assert max(by_dataset["zipf0"].values()) < 1.0
    # Skewed data: equi-width is the clear loser.
    zipf2 = by_dataset["zipf2"]
    assert zipf2["equi_width"] > 2 * zipf2["equi_height"]
    assert zipf2["equi_height"] < 1.0
    assert zipf2["compressed"] < 1.0
    # Every structure beats naive "no histogram" (error ~ mean query size).
    for dataset_name, errors in by_dataset.items():
        for name, err in errors.items():
            assert err < K / 3, (dataset_name, name)
