"""Distinct-value estimator shoot-out across distributions.

Section 6's framing (following Haas et al [10]): classical estimators can be
wildly wrong on some distributions; GEE's worst case is controlled.  The
bench evaluates every estimator on four distributions at a 5% sample and
reports ratio error (Definition 5) and rel-error; the assertion is the
paper's claim — GEE has the best (or tied-best) *worst-case* ratio error
and small rel-error everywhere.
"""

import numpy as np
from conftest import run_once

from repro.distinct.estimators import ALL_ESTIMATORS, estimate_all
from repro.distinct.metrics import ratio_error, rel_error
from repro.experiments import reporting
from repro.workloads.datasets import make_dataset

N = 100_000
RATE = 0.05
DATASETS = ("zipf0", "zipf2", "zipf4", "unif_dup", "all_distinct")


def evaluate():
    results = {est.name: {} for est in ALL_ESTIMATORS}
    truths = {}
    for name in DATASETS:
        dataset = make_dataset(name, N, rng=10)
        truths[name] = dataset.num_distinct
        rng = np.random.default_rng(11)
        per_estimator = {est.name: [] for est in ALL_ESTIMATORS}
        for _ in range(5):
            sample = dataset.values[rng.integers(0, N, size=int(RATE * N))]
            for est_name, value in estimate_all(sample, N).items():
                per_estimator[est_name].append(value)
        for est_name, values in per_estimator.items():
            results[est_name][name] = float(np.mean(values))
    return truths, results


def test_distinct_estimator_shootout(benchmark, report):
    truths, results = run_once(benchmark, evaluate)

    ratio_rows, rel_rows = [], []
    worst_ratio = {}
    for est_name, per_dataset in results.items():
        ratios = {
            ds: ratio_error(est, truths[ds]) for ds, est in per_dataset.items()
        }
        rels = {
            ds: rel_error(est, truths[ds], N) for ds, est in per_dataset.items()
        }
        worst_ratio[est_name] = max(ratios.values())
        ratio_rows.append(
            [est_name] + [round(ratios[ds], 2) for ds in DATASETS]
        )
        rel_rows.append(
            [est_name] + [round(rels[ds], 4) for ds in DATASETS]
        )

    report(
        "distinct_estimators",
        "\n\n".join(
            [
                reporting.paper_note(
                    "GEE's worst-case ratio error is controlled "
                    "(~sqrt(n/r)); classical estimators blow up on some "
                    "distribution; rel-error is small for GEE everywhere",
                    caveat=f"n={N:,}, sample rate {RATE:.0%}, 5 trials "
                    f"averaged; truths: "
                    + ", ".join(f"{d}={truths[d]:,}" for d in DATASETS),
                ),
                "Ratio error (Definition 5):\n"
                + reporting.format_table(["estimator", *DATASETS], ratio_rows),
                "Rel-error (|d-e|/n):\n"
                + reporting.format_table(["estimator", *DATASETS], rel_rows),
            ]
        ),
    )

    # GEE's worst case beats the unsafe extremes.
    assert worst_ratio["gee"] <= worst_ratio["naive"]
    assert worst_ratio["gee"] <= worst_ratio["scale_up"]
    # Rel-error is small on the paper's evaluated distributions.
    for ds in ("zipf0", "zipf2", "zipf4", "unif_dup"):
        assert rel_error(results["gee"][ds], truths[ds], N) < 0.12, ds
    # all_distinct is the Theorem 8 hard case: nobody can do better than
    # ~sqrt(n/r) ratio error there, and GEE sits right at that optimum.
    import math
    optimal = math.sqrt(N / (RATE * N))
    assert ratio_error(results["gee"]["all_distinct"],
                       truths["all_distinct"]) < 1.5 * optimal
