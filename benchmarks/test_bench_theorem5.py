"""Theorem 5 validation: δ-separation at the prescribed sample size.

The stronger guarantee: not only are the approximate histogram's bucket
*sizes* within δ of ideal (Theorem 4), every bucket's *contents* differ
from the perfect histogram's by at most δ (symmetric difference,
Definition 2).  Theorem 5 prescribes r >= 12*n^2*ln(2k/gamma)/delta^2 —
a constant factor more than Theorem 4, as the bench's side-by-side shows.
"""

import numpy as np
from conftest import run_once

from repro.core import bounds
from repro.core.error_metrics import separation_error
from repro.core.histogram import EquiHeightHistogram
from repro.experiments import reporting
from repro.sampling.record_sampler import sample_with_replacement

N, K, GAMMA = 100_000, 10, 0.1
TRIALS = 12


def evaluate():
    data = np.arange(N)
    perfect = EquiHeightHistogram.from_sorted_values(data, K)
    rows = []
    for f in (0.5, 1.0):
        delta = f * N / K
        r = min(N, bounds.theorem5_sample_size(N, K, delta, GAMMA))
        violations = 0
        measured = []
        for seed in range(TRIALS):
            sample = sample_with_replacement(data, r, seed)
            approx = EquiHeightHistogram.from_values(sample, K)
            sep = separation_error(
                approx.separators, perfect.separators, data
            )
            measured.append(sep)
            if sep > delta:
                violations += 1
        rows.append(
            (
                f,
                r,
                int(delta),
                int(np.mean(measured)),
                violations,
            )
        )
    return rows


def test_theorem5_separation_guarantee(benchmark, report):
    rows = run_once(benchmark, evaluate)
    thm4 = bounds.theorem4_sample_size(N, K, 0.5 * N / K, GAMMA)
    thm5 = bounds.theorem5_sample_size(N, K, 0.5 * N / K, GAMMA)
    report(
        "theorem5_validation",
        "\n\n".join(
            [
                reporting.paper_note(
                    "delta-separation achieved at the prescribed r in every "
                    "trial; Theorem 5's prescription is a constant factor "
                    "above Theorem 4's",
                    caveat=f"n={N:,}, k={K}, gamma={GAMMA}, {TRIALS} trials; "
                    f"at delta=0.5n/k: Thm4 r={thm4:,}, Thm5 r={thm5:,} "
                    f"(ratio {thm5 / thm4:.1f})",
                ),
                reporting.format_table(
                    ["f", "prescribed r", "delta", "mean separation",
                     "violations"],
                    rows,
                ),
            ]
        ),
    )

    for f, _r, delta, mean_sep, violations in rows:
        assert violations <= max(1, int(GAMMA * TRIALS))
        assert mean_sep < delta
    # The constant-factor relationship between the two prescriptions.
    assert 2 <= thm5 / thm4 <= 12 * K / 4 + 1
