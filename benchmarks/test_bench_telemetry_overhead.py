"""Live telemetry: instrumented request path stays near the baseline p99.

The ``repro.serve`` telemetry layer (docs/TELEMETRY.md) promises to be
cheap enough to leave on: per request it pays one logical-clock tick, one
sketch bucket increment, and a couple of ring-buffer records, all under a
leaf lock.  This benchmark drives the identical deterministic loadgen
workload against a telemetry-off and a telemetry-on
:class:`~repro.serve.StatsServer` and gates the instrumented per-request
p99 against the uninstrumented one.

The gate is deliberately generous — ``p99_on <= 5 * p99_off + 1ms`` —
because at smoke scale a request is tens of microseconds and absolute
jitter dominates; what the gate catches is a structural regression (a
build or an O(n) scan sneaking onto the per-request path), not scheduler
noise.  The logical halves of the two summaries must still match
byte-for-byte — the RNG-inert contract re-proved alongside the timing.
Results land in ``benchmarks/results/telemetry_overhead.txt``.  Set
``REPRO_ASSERT_SPEEDUP=0`` to disable the assertion (same escape hatch as
the other wall gates).
"""

from __future__ import annotations

import json
import os

from _emit import emit_json
from conftest import run_once

from repro.engine import Table
from repro.experiments import reporting
from repro.experiments.config import get_scale
from repro.serve import LoadGenerator, LoadProfile, StatsServer
from repro.workloads.datasets import make_dataset

#: Loadgen runs per mode; per-request p50/p99 keep the best (minimum) run.
REPS = 3
#: Requests per loadgen run (the figure scales size the table, not QPS).
REQUESTS = 400
#: The instrumented p99 may be at most this multiple of the baseline ...
MAX_RATIO = 5.0
#: ... plus this absolute floor, so microsecond-scale jitter cannot flake.
FLOOR_S = 1e-3


def _run_mode(values, scale, *, telemetry):
    """Best-of-REPS loadgen runs against a fresh server; keep min p99."""
    profile = LoadProfile(
        requests=REQUESTS,
        clients=2,
        seed=23,
        churn_rows=scale.n // 4 + 500,
        analyze_params=(("k", scale.k),),
    )
    best = None
    for _ in range(REPS):
        server = StatsServer(
            {"bench": Table("bench", {"value": values})},
            seed=17,
            build_params={"k": scale.k},
            telemetry=telemetry,
        )
        summary = LoadGenerator(server=server, profile=profile).run()
        if best is None or summary["wall"]["p99_s"] < best["wall"]["p99_s"]:
            best = summary
    return best


def _measure(values, scale):
    off = _run_mode(values, scale, telemetry=False)
    on = _run_mode(values, scale, telemetry=True)
    return {
        "off_p50_s": off["wall"]["p50_s"],
        "off_p99_s": off["wall"]["p99_s"],
        "on_p50_s": on["wall"]["p50_s"],
        "on_p99_s": on["wall"]["p99_s"],
        "logical_identical": (
            json.dumps(off["logical"], sort_keys=True)
            == json.dumps(on["logical"], sort_keys=True)
        ),
        "requests": sum(off["logical"]["requests"].values()),
    }


def test_telemetry_overhead_stays_bounded(benchmark, report):
    scale = get_scale()
    values = make_dataset("zipf2", scale.n, rng=0).values
    measured = run_once(benchmark, _measure, values, scale)

    assert measured["logical_identical"], (
        "telemetry changed the loadgen's logical summary — the RNG-inert "
        "contract is broken"
    )
    budget = MAX_RATIO * measured["off_p99_s"] + FLOOR_S
    ratio = (
        measured["on_p99_s"] / measured["off_p99_s"]
        if measured["off_p99_s"]
        else float("inf")
    )

    rows = [
        ["telemetry_off", measured["off_p50_s"], measured["off_p99_s"], 1.0],
        ["telemetry_on", measured["on_p50_s"], measured["on_p99_s"], ratio],
    ]
    text = "\n".join(
        [
            reporting.paper_note(
                "per-request live telemetry (sketch + windows + SLOs) adds "
                "bounded overhead to the serving path and leaves the "
                "logical summary byte-identical",
                caveat=f"scale={scale.name} (n={scale.n}, k={scale.k}), "
                f"~{REQUESTS} requests/run, best of {REPS} runs "
                f"per mode, gate p99_on <= {MAX_RATIO:g}*p99_off + "
                f"{FLOOR_S:g}s",
            ),
            "",
            reporting.format_table(
                ["mode", "p50_s", "p99_s", "p99_vs_off"], rows
            ),
        ]
    )
    report("telemetry_overhead", text)
    emit_json(
        "telemetry_overhead",
        {
            "params": {
                "scale": scale.name,
                "n": scale.n,
                "k": scale.k,
                "requests": measured["requests"],
                "reps": REPS,
                "max_ratio": MAX_RATIO,
                "floor_s": FLOOR_S,
            },
            "off_p50_s": measured["off_p50_s"],
            "off_p99_s": measured["off_p99_s"],
            "on_p50_s": measured["on_p50_s"],
            "on_p99_s": measured["on_p99_s"],
            "p99_ratio": ratio,
            "logical_identical": measured["logical_identical"],
        },
    )

    if os.environ.get("REPRO_ASSERT_SPEEDUP", "1") != "0":
        assert measured["on_p99_s"] <= budget, (
            f"telemetry-on p99 {measured['on_p99_s']:.6f}s exceeds "
            f"{MAX_RATIO:g}x baseline + {FLOOR_S:g}s "
            f"(= {budget:.6f}s; baseline {measured['off_p99_s']:.6f}s)"
        )
