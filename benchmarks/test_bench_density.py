"""Density estimation accuracy — the paper's deferred claim, verified.

Section 7.1: "because the estimation of the density was extremely accurate
whenever the CVB algorithm converges, we defer a discussion of density
estimation to the full version".

Two density notions are evaluated from the same CVB samples:

- the **self-join density** ``sum p_v^2`` (what SQL Server's density
  actually is): a second moment, estimated by sample collisions — this is
  the one that is "extremely accurate", because unlike the distinct *count*
  it concentrates fast;
- the **duplication density** derived from the GEE distinct estimate: this
  inherits Theorem 8's hardness, and the bench shows it drift on extreme
  skew — quantifying *why* the accurate density must be the second moment.
"""

import numpy as np
from conftest import run_once

from repro.engine import StatisticsManager, Table
from repro.engine.density import column_density, selfjoin_density
from repro.experiments import reporting
from repro.workloads.datasets import make_dataset

N = 100_000
DATASETS = ("zipf0", "zipf2", "zipf4", "unif_dup", "all_distinct")


def evaluate():
    rows = []
    for name in DATASETS:
        dataset = make_dataset(name, N, rng=3)
        true_sj = selfjoin_density(dataset.values)
        true_dup = column_density(dataset.values)
        manager = StatisticsManager()
        table = Table("t", {"x": dataset.values})
        stats = manager.analyze(table, "x", k=50, f=0.2, rng=4)
        rows.append(
            (
                name,
                f"{true_sj:.3e}",
                f"{stats.selfjoin_density:.3e}",
                round(
                    abs(stats.selfjoin_density - true_sj) / max(true_sj, 1e-12),
                    3,
                ),
                f"{true_dup:.3e}",
                f"{stats.density:.3e}",
                stats.converged,
            )
        )
    return rows


def test_density_accuracy(benchmark, report):
    rows = run_once(benchmark, evaluate)
    report(
        "density_accuracy",
        "\n\n".join(
            [
                reporting.paper_note(
                    "self-join density (the SQL Server statistic) is "
                    "extremely accurate whenever CVB converges; the "
                    "distinct-count-derived form drifts on extreme skew, "
                    "inheriting Theorem 8's hardness",
                    caveat=f"n={N:,}, k=50, f=0.2",
                ),
                reporting.format_table(
                    [
                        "dataset",
                        "selfjoin true",
                        "selfjoin est",
                        "rel err",
                        "dup-density true",
                        "dup-density est",
                        "converged",
                    ],
                    rows,
                ),
            ]
        ),
    )

    for name, _t, _e, rel_err, _dt, _de, converged in rows:
        assert converged, name
        # "Extremely accurate": single-digit percent relative error on the
        # second-moment density, on every distribution.
        assert rel_err <= 0.1, name
