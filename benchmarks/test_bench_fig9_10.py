"""Figures 9 & 10: distinct values — real vs in-sample vs GEE estimate.

Paper: for Zipf Z=2 (Figure 9) the estimate tracks the true distinct count
closely even from small samples; for Unif/Dup (Figure 10) the in-sample
count approaches the truth from below while the estimate converges from the
high side.  In both, the estimate beats reporting the raw sample count.
"""

from conftest import run_once

from repro.experiments import figures, reporting


def _render(result, name):
    return "\n\n".join(
        [
            reporting.paper_note(
                "numDVEst closer to numDVReal than numDVSamp at low rates",
                caveat=f"dataset={result['dataset']}, n={result['n']:,}, "
                f"true distinct={result['num_distinct']:,} "
                "(paper: n=10M, K=600)",
            ),
            reporting.format_series(
                f"{name}: distinct values vs sampling rate",
                [result["real"], result["sample"], result["estimate"]],
            ),
        ]
    )


def test_fig9_zipf_distinct_values(benchmark, report):
    result = run_once(benchmark, figures.figure9_10, "zipf2", seed=0)
    report("fig9", _render(result, "Figure 9 (Z=2)"))

    real = result["num_distinct"]
    # At every rate the GEE estimate is at least as close to the truth as
    # the raw in-sample count (which always underestimates under skew).
    for samp, est in zip(result["sample"].y, result["estimate"].y):
        assert abs(est - real) <= abs(samp - real) + 1e-9


def test_fig10_unif_dup_distinct_values(benchmark, report):
    result = run_once(benchmark, figures.figure9_10, "unif_dup", seed=0)
    report("fig10", _render(result, "Figure 10 (Unif/Dup)"))

    real = result["num_distinct"]
    # The in-sample count converges to the truth from below.
    samp = result["sample"].y
    assert all(a <= real + 1e-9 for a in samp)
    assert samp == sorted(samp)
    # The estimate converges: at the top rate it is essentially exact.
    assert abs(result["estimate"].y[-1] - real) / real < 0.05
