"""Machine-readable emission for the benchmark suite.

The txt reports under ``benchmarks/results/`` are written for humans; this
helper writes the same numbers as schema-versioned JSON next to them, so
trajectory tooling (and ``repro bench --compare``-style diffing) can parse
a suite's output without scraping tables.  The version constant is shared
with :mod:`repro.obs.bench` — one schema lineage for every bench artefact.

Suites opt in individually by calling :func:`emit_json` after their
``report(...)`` call; suites that have not been ported remain txt-only
(the list lives in ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.bench import BENCH_SCHEMA_VERSION

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Write *payload* to ``benchmarks/results/<name>.json`` and return the path.

    The document wraps *payload* with ``schema_version`` (shared with the
    ``repro bench`` reports), ``kind: "bench-suite"`` and the suite *name*;
    keys are sorted and the file ends in a newline, so reruns of a
    deterministic suite are byte-identical.
    """
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench-suite",
        "suite": name,
    }
    document.update(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
