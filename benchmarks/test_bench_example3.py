"""Example 3: the multi-functional Corollary 1 trade-off, numerically.

Paper (gamma = 0.01): sample-size, histogram-size and histogram-error
determinations — r ~ 1 Meg at (k=500, f=0.2); r ~ 800 K at (k=100, f=0.1);
k <= 800 at (n=20 Meg, r=1 Meg, f=0.25); f <= 14% at (n=25 Meg, r=800 K,
k=200).  The paper rounds ln(2n/gamma) to ~20 (exact ~26), so exact values
run 20-30% above its quotes; both columns are printed.
"""

from conftest import run_once

from repro.core import bounds
from repro.experiments import reporting

GAMMA = 0.01
GIG = 2**30
MEG = 2**20


def compute():
    return {
        "r_k500_f02": bounds.corollary1_sample_size(GIG, 500, 0.2, GAMMA),
        "r_k100_f01": bounds.corollary1_sample_size(GIG, 100, 0.1, GAMMA),
        "k_max": bounds.corollary1_max_buckets(20 * MEG, MEG, 0.25, GAMMA),
        "f_bound": bounds.corollary1_error_fraction(25 * MEG, 200, 800_000, GAMMA),
    }


def test_example3_tradeoff_numbers(benchmark, report):
    values = run_once(benchmark, compute)
    rows = [
        ("sample size (k=500, f=0.2)", "~1 Meg", f"{values['r_k500_f02']:,}"),
        ("sample size (k=100, f=0.1)", "~800 K", f"{values['r_k100_f01']:,}"),
        ("max buckets (n=20M, r=1M, f=0.25)", "<= 800", values["k_max"]),
        ("error bound (n=25M, r=800K, k=200)", "<= 14%", f"{values['f_bound']:.1%}"),
    ]
    report(
        "example3_tradeoffs",
        "\n\n".join(
            [
                reporting.paper_note(
                    "Example 3's three determinations, gamma=0.01",
                    caveat="paper rounds ln(2n/gamma) to ~20; exact is ~26, "
                    "so exact values sit 20-30% above the quotes",
                ),
                reporting.format_table(["determination", "paper", "exact"], rows),
            ]
        ),
    )

    assert 0.9 * MEG <= values["r_k500_f02"] <= 1.4 * MEG
    assert 700_000 <= values["r_k100_f01"] <= 1_100_000
    assert 650 <= values["k_max"] <= 800
    assert 0.12 <= values["f_bound"] <= 0.15


def test_example3_independence_from_n(benchmark, report):
    """The headline property: r is flat in n (log factor only)."""
    def sweep():
        return [
            (n, bounds.corollary1_sample_size(n, 500, 0.2, GAMMA))
            for n in (10**6, 10**7, 10**8, 10**9, 10**12)
        ]

    rows = run_once(benchmark, sweep)
    report(
        "example3_n_independence",
        reporting.format_table(["n", "required r (k=500, f=0.2)"], rows),
    )
    assert rows[-1][1] < 2 * rows[0][1]  # 10^6x more data, < 2x more samples
