"""Micro-benchmarks of the hot kernels (real timing loops).

These are the operations every experiment leans on: histogram construction
from a sorted sample, partitioning a probe set by existing separators,
error-metric evaluation, and block sampling through the storage layer.
They use pytest-benchmark's normal timing (many rounds) since each call is
microseconds-to-milliseconds.
"""

import numpy as np
import pytest

from repro.core.error_metrics import fractional_max_error, max_error_fraction
from repro.core.histogram import EquiHeightHistogram
from repro.sampling.block_sampler import sample_blocks
from repro.storage import HeapFile

N = 500_000
K = 200


@pytest.fixture(scope="module")
def sorted_values():
    rng = np.random.default_rng(0)
    return np.sort(rng.integers(0, 10**9, size=N))


@pytest.fixture(scope="module")
def histogram(sorted_values):
    return EquiHeightHistogram.from_sorted_values(sorted_values, K)


@pytest.fixture(scope="module")
def heapfile(sorted_values):
    return HeapFile.from_values(sorted_values, layout="random", rng=1,
                                blocking_factor=100)


def test_build_histogram_from_sorted(benchmark, sorted_values):
    result = benchmark(
        EquiHeightHistogram.from_sorted_values, sorted_values, K
    )
    assert result.k == K


def test_partition_probe_set(benchmark, histogram, sorted_values):
    probe = sorted_values[::5]
    counts = benchmark(histogram.count_values, probe)
    assert counts.sum() == probe.size


def test_max_error_fraction(benchmark, histogram):
    value = benchmark(max_error_fraction, histogram.counts)
    assert value >= 0


def test_fractional_max_error(benchmark, histogram, sorted_values):
    sample = sorted_values[::10]
    value = benchmark(
        fractional_max_error, histogram.separators, sample, sorted_values
    )
    assert value >= 0


def test_block_sampling(benchmark, heapfile):
    def take():
        return sample_blocks(heapfile, 200, rng=2)

    out = benchmark(take)
    assert out.size == 200 * heapfile.blocking_factor


def test_range_estimate(benchmark, histogram):
    value = benchmark(histogram.estimate_range, 10**8, 6 * 10**8)
    assert value > 0
