"""Example 2: the three error metrics on the paper's fixed bucket vector.

Paper: bucket sizes 88, 101, 87, 88, 89, 180, 90, 88, 103, 86 over n=1000,
k=10 give Δavg = 16.8, Δvar = 27.5 (27.25 exact), Δmax = 80.0 — the gap
between the metrics grows unboundedly with k (Theorem 2 gives the ordering).
"""

import numpy as np
from conftest import run_once

from repro.core.error_metrics import avg_error, max_error, var_error
from repro.experiments import reporting

EXAMPLE2 = np.array([88, 101, 87, 88, 89, 180, 90, 88, 103, 86])


def compute():
    return {
        "avg": avg_error(EXAMPLE2),
        "var": var_error(EXAMPLE2),
        "max": max_error(EXAMPLE2),
    }


def test_example2_metric_values(benchmark, report):
    metrics = run_once(benchmark, compute)
    text = "\n\n".join(
        [
            reporting.paper_note(
                "Δavg = 16.8, Δvar = 27.5 (exact 27.25), Δmax = 80.0"
            ),
            reporting.format_table(
                ["metric", "paper", "measured"],
                [
                    ("avg error", 16.8, metrics["avg"]),
                    ("var error", 27.5, metrics["var"]),
                    ("max error", 80.0, metrics["max"]),
                ],
            ),
        ]
    )
    report("example2_metrics", text)

    assert metrics["avg"] == 16.8
    assert abs(metrics["var"] - 27.25) < 0.01
    assert metrics["max"] == 80.0
    # Theorem 2's ordering.
    assert metrics["avg"] <= metrics["var"] <= metrics["max"]


def test_example2_gap_grows_with_k(benchmark, report):
    """The paper's closing remark: as k grows, the gap between the metrics
    can grow unboundedly.  One oversized bucket among k demonstrates it."""
    def sweep():
        rows = []
        for k in (10, 100, 1000):
            counts = np.full(k, 100)
            counts[0] += 80  # same absolute spike at every k
            rows.append(
                (k, avg_error(counts), var_error(counts), max_error(counts))
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "example2_gap_vs_k",
        reporting.format_table(["k", "avg", "var", "max"], rows),
    )
    gaps = [row[3] / row[1] for row in rows]  # max / avg
    assert gaps[0] < gaps[1] < gaps[2]
