"""Theorem 7 validation: the cross-validation test separates good from bad
histograms.

Paper: with a validation sample of s >= O(k/f^2) tuples, a histogram with
max error > 2f*n/k almost always shows deviation >= f*s/k on the sample
(part 1), while one with max error < f*n/(2k) almost never does (part 2) —
so CVB neither stops too early nor keeps sampling too long.
"""

import numpy as np
from conftest import run_once

from repro.core import bounds
from repro.core.error_metrics import relative_deviation
from repro.core.histogram import EquiHeightHistogram
from repro.experiments import reporting
from repro.sampling.record_sampler import sample_with_replacement

N, K, F, GAMMA = 500_000, 10, 0.2, 0.1
TRIALS = 30


def build_histogram_with_deviation(data, deviation):
    perfect = EquiHeightHistogram.from_sorted_values(data, K)
    seps = perfect.separators.copy()
    seps[0] = seps[0] + deviation  # bucket 0 grows by `deviation` values
    return EquiHeightHistogram.from_separators(np.sort(seps), data)


def flag_rates():
    data = np.arange(N)
    s = min(N, bounds.cross_validation_sample_size(K, F, GAMMA))
    rows = []
    for label, deviation in [
        ("bad: 2f*n/k", int(2 * F * N / K)),
        ("marginal: f*n/k", int(F * N / K)),
        ("good: f*n/(2k)", int(F * N / (2 * K))),
        ("perfect: 0", 0),
    ]:
        hist = build_histogram_with_deviation(data, deviation)
        flagged = 0
        for seed in range(TRIALS):
            sample = sample_with_replacement(data, s, seed)
            if relative_deviation(hist, sample) >= F * s / K:
                flagged += 1
        rows.append((label, deviation, flagged / TRIALS))
    return s, rows


def test_theorem7_separation(benchmark, report):
    s, rows = run_once(benchmark, flag_rates)
    report(
        "theorem7_cross_validation",
        "\n\n".join(
            [
                reporting.paper_note(
                    "bad histograms flagged ~always, good ones ~never; "
                    "the test is a reliable stopping rule",
                    caveat=f"n={N:,}, k={K}, f={F}, validation sample s={s:,}, "
                    f"{TRIALS} trials",
                ),
                reporting.format_table(
                    ["histogram", "built-in deviation", "flag rate"], rows
                ),
            ]
        ),
    )

    by_label = {label: rate for label, _, rate in rows}
    assert by_label["bad: 2f*n/k"] >= 1 - GAMMA
    assert by_label["good: f*n/(2k)"] <= GAMMA
    assert by_label["perfect: 0"] <= GAMMA
    # Monotone in the underlying deviation.
    rates = [rate for _, _, rate in rows]
    assert rates == sorted(rates, reverse=True)
