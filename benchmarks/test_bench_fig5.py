"""Figure 5: max error vs sampling rate for Z in {0, 2, 4}.

Paper: with a random on-disk layout, the error-vs-rate curves of all three
skews fall together and converge at essentially the same sampling rate —
the Corollary 1 bound is distribution-independent.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figures, reporting


def test_fig5_error_convergence_is_distribution_independent(
    benchmark, report, trial_workers, trial_chunk_size
):
    result = run_once(
        benchmark,
        figures.figure5,
        seed=0,
        workers=trial_workers,
        chunk_size=trial_chunk_size,
    )
    text = "\n\n".join(
        [
            reporting.paper_note(
                "error falls with rate; convergence point is the same for "
                "Z=0, 2 and 4",
                caveat=f"scale={result['scale']}, k={result['k']} "
                "(paper: n=10M, k=600)",
            ),
            reporting.format_series(
                "Figure 5: max error vs sampling rate (random layout)",
                result["series"],
            ),
        ]
    )
    report("fig5", text)

    for series in result["series"]:
        # Each curve falls substantially from the lowest to highest rate.
        assert series.y[-1] < 0.5 * series.y[0], series.label
    # Distribution independence: at the top rate every distribution's error
    # is small.  The f' metric's floor is higher for heavy-duplicate data
    # (tiny separator ranges are judged relatively, Definition 4), so the
    # band is wider than a count-metric reading would suggest.
    finals = np.array([s.y[-1] for s in result["series"]])
    assert finals.max() < 0.5
