"""Serving layer: cache-hit latency vs cold ANALYZE (>= 10x contract).

The point of the ``repro.serve`` statistics cache is that answering an
estimate from a cached (statistics bundle, BucketIndex) pair costs orders
of magnitude less than building the statistics on demand.  This benchmark
measures both paths through the real server surface —

- **cold ANALYZE**: a fresh :class:`~repro.serve.StatsServer` handles one
  ``analyze`` request (admission slot, sampling build, cache install), and
- **cache hit**: the warmed server answers ``estimate_range`` /
  ``estimate_quantile`` requests from the hot bundle (validation, cache
  lookup, O(log k) index probe) —

and records per-request wall clock plus the realised speedup in
``benchmarks/results/serve_speedup.txt``.  The >= 10x assertion runs at
every scale (set ``REPRO_ASSERT_SPEEDUP=0`` to disable): even the smoke
workload's build samples thousands of tuples while a hit is a dict lookup
plus a binary search, so the gap is structural, not a tuning artefact.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _emit import emit_json
from conftest import run_once

from repro.engine import Table
from repro.experiments import reporting
from repro.experiments.config import get_scale
from repro.serve import StatsServer
from repro.workloads.datasets import make_dataset

#: Best-of repetitions for the cold-ANALYZE timing.
COLD_REPS = 3
#: Cache-hit requests timed per estimate endpoint (per-request = mean).
HIT_REQUESTS = 2000
#: The per-request improvement the cache-hit path must deliver.
TARGET_SPEEDUP = 10.0


def _best_of(fn, reps):
    """Minimum wall-clock over *reps* runs; returns (seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fresh_server(values, k, seed):
    """A server over one zipf2 column with nothing built or cached yet."""
    return StatsServer(
        {"bench": Table("bench", {"value": values})},
        seed=seed,
        build_params={"k": k},
    )


def _checked(response):
    """Unwrap a server response, failing loudly on transport-level errors."""
    assert response["ok"], response
    return response["result"]


def _measure(values, k):
    """Time the cold-build and cache-hit paths; return walls + evidence."""

    def cold_analyze():
        server = _fresh_server(values, k, seed=7)
        return _checked(
            server.handle({"op": "analyze", "table": "bench", "column": "value"})
        )

    cold_s, cold_result = _best_of(cold_analyze, COLD_REPS)

    server = _fresh_server(values, k, seed=7)
    _checked(server.handle({"op": "analyze", "table": "bench", "column": "value"}))
    rng = np.random.default_rng(11)
    lo_d, hi_d = float(values.min()), float(values.max())
    width = hi_d - lo_d
    ranges = [
        tuple(sorted((lo_d + float(a) * width, lo_d + float(b) * width)))
        for a, b in rng.random((HIT_REQUESTS, 2))
    ]
    quantiles = [float(q) for q in rng.random(HIT_REQUESTS)]

    def hit_ranges():
        rows = 0.0
        for lo, hi in ranges:
            rows += _checked(
                server.handle(
                    {
                        "op": "estimate_range", "table": "bench",
                        "column": "value", "lo": lo, "hi": hi,
                    }
                )
            )["rows"]
        return rows

    def hit_quantiles():
        acc = 0.0
        for q in quantiles:
            acc += _checked(
                server.handle(
                    {
                        "op": "estimate_quantile", "table": "bench",
                        "column": "value", "q": q,
                    }
                )
            )["value"]
        return acc

    range_s, _ = _best_of(hit_ranges, 1)
    quantile_s, _ = _best_of(hit_quantiles, 1)
    hits = server.cache.hits
    return {
        "cold_s": cold_s,
        "cold_pages_read": cold_result["pages_read"],
        "range_per_req_s": range_s / HIT_REQUESTS,
        "quantile_per_req_s": quantile_s / HIT_REQUESTS,
        "cache_hits": hits,
    }


def test_cache_hit_is_10x_faster_than_cold_analyze(benchmark, report):
    scale = get_scale()
    values = make_dataset("zipf2", scale.n, rng=0).values
    measured = run_once(benchmark, _measure, values, scale.k)

    assert measured["cache_hits"] >= 2 * HIT_REQUESTS
    hit_s = max(measured["range_per_req_s"], measured["quantile_per_req_s"])
    speedup = measured["cold_s"] / hit_s if hit_s else float("inf")

    rows = [
        ["cold_analyze", measured["cold_s"], 1.0],
        ["hit_estimate_range", measured["range_per_req_s"],
         measured["cold_s"] / measured["range_per_req_s"]],
        ["hit_estimate_quantile", measured["quantile_per_req_s"],
         measured["cold_s"] / measured["quantile_per_req_s"]],
    ]
    text = "\n".join(
        [
            reporting.paper_note(
                "the serving cache answers estimates from the hot "
                "(statistics, BucketIndex) bundle orders of magnitude "
                "faster than building statistics on demand",
                caveat=f"scale={scale.name} (n={scale.n}, k={scale.k}), "
                f"{HIT_REQUESTS} hits/endpoint, cold best of {COLD_REPS}, "
                f"cold build read {measured['cold_pages_read']} pages",
            ),
            "",
            reporting.format_table(
                ["path", "per_request_s", "speedup_vs_cold"], rows
            ),
        ]
    )
    report("serve_speedup", text)
    emit_json(
        "serve_speedup",
        {
            "params": {
                "scale": scale.name,
                "n": scale.n,
                "k": scale.k,
                "hit_requests": HIT_REQUESTS,
                "cold_reps": COLD_REPS,
            },
            "cold_analyze_s": measured["cold_s"],
            "cold_pages_read": measured["cold_pages_read"],
            "hit_estimate_range_s": measured["range_per_req_s"],
            "hit_estimate_quantile_s": measured["quantile_per_req_s"],
            "speedup_worst_endpoint": speedup,
        },
    )

    if os.environ.get("REPRO_ASSERT_SPEEDUP", "1") != "0":
        assert speedup >= TARGET_SPEEDUP, (
            f"expected cache hits >= {TARGET_SPEEDUP}x faster than cold "
            f"ANALYZE at n={scale.n}, measured {speedup:.1f}x"
        )
