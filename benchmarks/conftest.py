"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures, prints the
series, and writes it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  Benchmarks also make *shape* assertions — the
paper's qualitative claims — so a regression in the algorithms fails the
suite rather than silently producing the wrong curve.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Write a named report to the results directory and echo it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        # Echoed so `pytest -s` shows it inline too.
        print(f"\n=== {name} ===\n{text}")

    return _report


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing.

    The figure experiments are macro-benchmarks: a single run is the
    measurement (its internal trials already average the randomness), and
    re-running them for timing statistics would multiply the suite's
    runtime for no extra information.
    """
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
