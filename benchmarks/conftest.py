"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures, prints the
series, and writes it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  Benchmarks also make *shape* assertions — the
paper's qualitative claims — so a regression in the algorithms fails the
suite rather than silently producing the wrong curve.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    """Trial-engine knobs, honoured by benchmarks that fan out trials.

    ``pytest benchmarks --workers 4`` parallelises the Monte-Carlo trials
    inside the figure experiments; results are bit-identical for any value
    (the trial engine derives every trial's stream from its own seed).
    Defaults come from ``$REPRO_WORKERS`` / ``$REPRO_CHUNK_SIZE``, else 1 /
    auto.
    """
    parser.addoption(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        help="worker processes for Monte-Carlo trials (default 1)",
    )
    parser.addoption(
        "--trial-chunk-size",
        type=int,
        default=(
            int(os.environ["REPRO_CHUNK_SIZE"])
            if os.environ.get("REPRO_CHUNK_SIZE")
            else None
        ),
        help="trials per worker task (default: auto)",
    )


@pytest.fixture
def trial_workers(request) -> int:
    workers = request.config.getoption("--workers")
    if workers < 1:
        raise pytest.UsageError(f"--workers must be >= 1, got {workers}")
    return workers


@pytest.fixture
def trial_chunk_size(request):
    chunk = request.config.getoption("--trial-chunk-size")
    if chunk is not None and chunk < 1:
        raise pytest.UsageError(
            f"--trial-chunk-size must be >= 1, got {chunk}"
        )
    return chunk


@pytest.fixture
def report():
    """Write a named report to the results directory and echo it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        # Echoed so `pytest -s` shows it inline too.
        print(f"\n=== {name} ===\n{text}")

    return _report


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing.

    The figure experiments are macro-benchmarks: a single run is the
    measurement (its internal trials already average the randomness), and
    re-running them for timing statistics would multiply the suite's
    runtime for no extra information.
    """
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
