"""CVB ablations: the design choices DESIGN.md calls out.

1. Step schedule — doubling (the analysis), the prototype's 5i*sqrt(n)
   steps, linear: oversampling vs convergence-round trade-off.
2. Validation sample — full increment vs one random tuple per block: on a
   clustered layout, per-block validation decorrelates the signal.
3. Layout adaptivity — the algorithm's raison d'etre: random vs partially
   clustered vs fully sorted layouts, pages sampled until convergence,
   against the ground-truth requirement measured by direct search.
"""

import math

import numpy as np
from conftest import run_once

from repro.experiments import reporting
from repro.experiments.runner import (
    build_heapfile,
    cvb_sampling_cost,
    required_blocks_for_error,
)
from repro.sampling.schedule import DoublingSchedule, LinearSchedule, SqrtSchedule
from repro.workloads.datasets import make_dataset

N, B, K, F = 200_000, 50, 50, 0.2


def schedule_ablation():
    dataset = make_dataset("zipf2", N, rng=0)
    initial = max(1, math.ceil(5 * math.sqrt(N) / B))
    schedules = [
        ("doubling", lambda: DoublingSchedule(initial)),
        ("sqrt(5i*sqrt(n))", lambda: SqrtSchedule(N, B)),
        ("linear", lambda: LinearSchedule(initial)),
    ]
    rows = []
    for label, make_schedule in schedules:
        costs = []
        for seed in range(3):
            hf = build_heapfile(dataset.values, "random", B, rng=100 + seed)
            costs.append(
                cvb_sampling_cost(
                    hf,
                    dataset.values,
                    k=K,
                    f=F,
                    rng=200 + seed,
                    schedule=make_schedule(),
                )
            )
        rows.append(
            (
                label,
                int(np.mean([c.blocks_sampled for c in costs])),
                int(np.mean([c.iterations for c in costs])),
                float(np.mean([c.achieved_error for c in costs])),
                all(c.converged for c in costs),
            )
        )
    return dataset, rows


def layout_ablation(dataset):
    rows = []
    for layout in ("random", "partial", "sorted"):
        hf = build_heapfile(dataset.values, layout, B, rng=7)
        ground_truth = required_blocks_for_error(
            hf, dataset.values, K, F, trials=5, rng=8
        )
        costs = []
        for seed in range(3):
            hf2 = build_heapfile(dataset.values, layout, B, rng=300 + seed)
            costs.append(
                cvb_sampling_cost(hf2, dataset.values, k=K, f=F, rng=400 + seed)
            )
        cvb_blocks = int(np.mean([c.blocks_sampled for c in costs]))
        rows.append(
            (
                layout,
                ground_truth,
                cvb_blocks,
                round(cvb_blocks / max(1, ground_truth), 2),
                float(np.mean([c.achieved_error for c in costs])),
            )
        )
    return rows


def validation_mode_ablation(dataset):
    rows = []
    for mode in ("full_increment", "one_per_block"):
        costs = []
        for seed in range(3):
            hf = build_heapfile(dataset.values, "partial", B, rng=500 + seed)
            costs.append(
                cvb_sampling_cost(
                    hf,
                    dataset.values,
                    k=K,
                    f=F,
                    rng=600 + seed,
                    validation=mode,
                )
            )
        rows.append(
            (
                mode,
                int(np.mean([c.blocks_sampled for c in costs])),
                float(np.mean([c.achieved_error for c in costs])),
            )
        )
    return rows


def test_ablation_schedules(benchmark, report):
    dataset, schedule_rows = run_once(benchmark, schedule_ablation)
    layout_rows = layout_ablation(dataset)
    validation_rows = validation_mode_ablation(dataset)
    report(
        "ablation_cvb",
        "\n\n".join(
            [
                reporting.paper_note(
                    "doubling converges in few rounds with bounded "
                    "oversampling; clustered layouts force more sampling "
                    "(the adaptivity claim of Section 4)",
                    caveat=f"n={N:,}, b={B}, k={K}, f={F}",
                ),
                reporting.format_table(
                    ["schedule", "blocks", "rounds", "achieved err", "converged"],
                    schedule_rows,
                ),
                reporting.format_table(
                    [
                        "layout",
                        "ground-truth blocks",
                        "CVB blocks",
                        "oversampling",
                        "achieved err",
                    ],
                    layout_rows,
                ),
                reporting.format_table(
                    ["validation", "blocks", "achieved err"], validation_rows
                ),
            ]
        ),
    )

    by_schedule = {row[0]: row for row in schedule_rows}
    # Doubling needs (many) fewer rounds than fixed small increments: tiny
    # validation increments can never certify the target (Theorem 7's sample
    # size), so the linear schedule degenerates toward a full scan.
    assert by_schedule["doubling"][2] < by_schedule["linear"][2]
    # Every run met a reasonable error against the data.
    for _, _, _, err, converged in schedule_rows:
        assert converged
        assert err <= 2 * F

    by_layout = {row[0]: row for row in layout_rows}
    # The adaptivity claim: clustered layouts require more sampling, both
    # in ground truth and in what CVB actually spends.
    assert by_layout["partial"][1] >= by_layout["random"][1]
    assert by_layout["sorted"][2] >= by_layout["partial"][2] >= by_layout[
        "random"
    ][2]
