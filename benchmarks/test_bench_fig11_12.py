"""Figures 11 & 12: the rel-error metric |d - e|/n vs sampling rate.

Paper: while ratio error cannot be bounded (Theorem 8), the rel-error of
the GEE estimate is small for both distributions — tiny for Zipf Z=2
(Figure 11, few easily-found distinct values) and small, shrinking with
rate, for Unif/Dup (Figure 12).  This is the metric an optimizer can
actually rely on.
"""

from conftest import run_once

from repro.experiments import figures, reporting


def _render(result, name):
    return "\n\n".join(
        [
            reporting.paper_note(
                "rel-error |d-e|/n of the estimate is small at all rates",
                caveat=f"dataset={result['dataset']}, n={result['n']:,}, "
                f"true distinct={result['num_distinct']:,}",
            ),
            reporting.format_series(
                f"{name}: rel-error vs sampling rate",
                [result["err_sample"], result["err_estimate"]],
            ),
        ]
    )


def test_fig11_zipf_rel_error(benchmark, report):
    result = run_once(benchmark, figures.figure11_12, "zipf2", seed=0)
    report("fig11", _render(result, "Figure 11 (Z=2)"))
    # Zipf: rel-error of the estimate stays minuscule everywhere.
    assert max(result["err_estimate"].y) < 0.01


def test_fig12_unif_dup_rel_error(benchmark, report):
    result = run_once(benchmark, figures.figure11_12, "unif_dup", seed=0)
    report("fig12", _render(result, "Figure 12 (Unif/Dup)"))
    errs = result["err_estimate"].y
    # Small throughout and shrinking as the rate grows.
    assert max(errs) < 0.1
    assert errs[-1] < errs[0]


def test_fig11_vs_12_zipf_is_easier(benchmark, report):
    """The paper's cross-figure observation: prediction is far more accurate
    for the Zipf distribution than for Unif/Dup at low sampling rates."""
    zipf = run_once(benchmark, figures.figure11_12, "zipf2", seed=1)
    unif = figures.figure11_12("unif_dup", seed=1)
    report(
        "fig11_12_comparison",
        reporting.format_table(
            ["rate", "rel_err_zipf2", "rel_err_unif_dup"],
            list(
                zip(
                    zipf["err_estimate"].x,
                    zipf["err_estimate"].y,
                    unif["err_estimate"].y,
                )
            ),
        ),
    )
    # At the smallest rate Zipf is the clearly easier case.
    assert zipf["err_estimate"].y[0] < unif["err_estimate"].y[0]
