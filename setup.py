"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file exists so
``pip install -e . --no-use-pep517`` (legacy editable mode) works offline.
"""

from setuptools import setup

setup()
